// progress.hpp — live done/total stage counters for long-running work.
//
// A ProgressStage is a named pair of monotonic counters (done, total)
// registered on the process-wide ProgressBoard. Long loops — the
// windowed ChainView build (per window), the simulator's day loop,
// H1/H2 tx scans, checkpoint resume — advance a stage as they go, and
// two consumers read it live:
//
//   * the TelemetryServer's /progress endpoint (JSON, includes a
//     steady-clock derived rate and ETA — wall-dependent, so those
//     fields live ONLY here, never in the metrics registry, keeping
//     the deterministic-snapshot contract intact);
//   * fistctl --progress, a throttled stderr ticker.
//
// Mutation is relaxed atomics on a pre-bound handle — cheap enough for
// per-window/per-day granularity (don't advance per transaction; batch
// like the H1/H2 chunk loops do). Find-or-create on the board takes a
// fist::Mutex at rank kObsProgressBoard.
//
// Under -DFISTFUL_NO_OBS the layer compiles to stubs, like metrics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef FISTFUL_NO_OBS
#include <atomic>
#include <chrono>
#include <memory>

#include "core/lock_order.hpp"
#endif

namespace fist::obs {

/// One stage as seen by a reader.
struct ProgressStageValue {
  std::string name;
  std::uint64_t done = 0;
  std::uint64_t total = 0;   ///< 0 = unknown (no ETA derivable)
  bool finished = false;
  double elapsed_ms = 0;     ///< steady-clock since begin_stage
};

#ifndef FISTFUL_NO_OBS

namespace detail {
struct StageImpl {
  std::string name;
  std::atomic<std::uint64_t> done{0};
  std::atomic<std::uint64_t> total{0};
  std::atomic<bool> finished{false};
  std::chrono::steady_clock::time_point start;
};
}  // namespace detail

/// Cheap copyable handle; default-constructed handles are no-ops.
class ProgressStage {
 public:
  ProgressStage() = default;
  void advance(std::uint64_t n = 1) const noexcept {
    if (impl_ != nullptr)
      impl_->done.fetch_add(n, std::memory_order_relaxed);
  }
  void set_total(std::uint64_t total) const noexcept {
    if (impl_ != nullptr)
      impl_->total.store(total, std::memory_order_relaxed);
  }
  void finish() const noexcept {
    if (impl_ != nullptr)
      impl_->finished.store(true, std::memory_order_relaxed);
  }

 private:
  friend class ProgressBoard;
  explicit ProgressStage(detail::StageImpl* impl) : impl_(impl) {}
  detail::StageImpl* impl_ = nullptr;
};

/// Name → stage registry; stages appear in begin order in snapshots.
class ProgressBoard {
 public:
  ProgressBoard() = default;
  ProgressBoard(const ProgressBoard&) = delete;
  ProgressBoard& operator=(const ProgressBoard&) = delete;

  static ProgressBoard& global();

  /// Find-or-create `name` and (re)start it: done = 0, total as given,
  /// finished = false, clock restarted — so a resumed pipeline rerun
  /// reports the rerun, not the sum of both runs. Handles from earlier
  /// begin_stage calls stay valid and feed the restarted stage.
  ProgressStage begin_stage(std::string_view name, std::uint64_t total = 0);

  /// All stages in begin order, values read at call time.
  std::vector<ProgressStageValue> snapshot() const;

  /// Drops every stage (tests; handles become dangling — rebind).
  void reset();

 private:
  mutable Mutex board_mutex_{lockorder::Rank::kObsProgressBoard};
  std::vector<std::unique_ptr<detail::StageImpl>> stages_
      FIST_GUARDED_BY(board_mutex_);
};

#else  // FISTFUL_NO_OBS

class ProgressStage {
 public:
  void advance(std::uint64_t = 1) const noexcept {}
  void set_total(std::uint64_t) const noexcept {}
  void finish() const noexcept {}
};

class ProgressBoard {
 public:
  static ProgressBoard& global();
  ProgressStage begin_stage(std::string_view, std::uint64_t = 0) {
    return {};
  }
  std::vector<ProgressStageValue> snapshot() const { return {}; }
  void reset() {}
};

#endif  // FISTFUL_NO_OBS

/// The /progress JSON document: {"stages":[{"name","done","total",
/// "finished","elapsed_ms","rate_per_s","eta_s"}...]}. rate/eta derive
/// from the steady clock at render time — they are explicitly OUTSIDE
/// the deterministic-output contract (docs/OBSERVABILITY.md carve-out)
/// and therefore never enter the metrics registry.
std::string render_progress_json(const std::vector<ProgressStageValue>& stages);

/// One-line ticker ("h1.scan 3/10 30% eta 12s | ...") for stderr.
std::string render_progress_line(const std::vector<ProgressStageValue>& stages);

/// Throttled stderr ticker: when enabled, tick() reprints the line at
/// most every `interval_ms` (lock-free CAS on the last-print stamp).
void set_progress_console(bool enabled, int interval_ms = 500);
void progress_console_tick();

}  // namespace fist::obs
