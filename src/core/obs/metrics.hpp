// metrics.hpp — process-wide counters, gauges, and histograms.
//
// The observability substrate every layer reports into: the executor
// counts tasks and steals, ChainView::build counts script classes,
// the heuristics count merges and refinement rejections, the simulator
// and net layer count blocks/txs/propagation events. A metric is a
// cheap copyable handle into the process-wide MetricsRegistry;
// mutation is lock-free (per-thread shard slots, relaxed atomics) so
// hot loops on executor workers can increment freely. snapshot()
// merges the shards into a name-sorted, deterministic view.
//
// Determinism convention (see docs/OBSERVABILITY.md): metrics under
// the `exec.` prefix describe scheduling and may vary with thread
// count; every other metric must be a pure function of the input, so
// its value is bit-identical at threads = 1, 2, 8 — the property
// tests/test_obs.cpp enforces.
//
// Compiling with -DFISTFUL_NO_OBS replaces every handle with an empty
// stub (mutations compile to nothing, snapshots are empty); the
// BM_Obs_* micro-benches in bench/micro_substrate quantify both paths.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef FISTFUL_NO_OBS
#include <array>
#include <atomic>
#include <map>
#include <memory>

#include "core/lock_order.hpp"
#endif

namespace fist::obs {

/// One merged counter in a Snapshot.
struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

/// One gauge in a Snapshot.
struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

/// One merged histogram in a Snapshot. `buckets[i]` counts
/// observations v <= bounds[i] (non-cumulative); `buckets.back()` is
/// the overflow bucket (v > bounds.back()).
struct HistogramValue {
  std::string name;
  std::vector<double> bounds;           ///< ascending finite upper bounds
  std::vector<std::uint64_t> buckets;   ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0;
};

/// A merged, name-sorted view of every registered metric.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Lookup helpers (nullptr when absent).
  const CounterValue* counter(std::string_view name) const noexcept;
  const GaugeValue* gauge(std::string_view name) const noexcept;
  const HistogramValue* histogram(std::string_view name) const noexcept;
};

#ifndef FISTFUL_NO_OBS

namespace detail {

inline constexpr std::size_t kShards = 16;

/// Per-thread shard slot; threads are assigned round-robin, so
/// same-slot contention only appears past kShards concurrent threads.
std::size_t shard_index() noexcept;

struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterImpl {
  std::array<Cell, kShards> cells;
};

struct GaugeImpl {
  std::atomic<std::int64_t> value{0};
};

struct HistogramImpl {
  std::vector<double> bounds;
  // Shard-major bucket cells: cells[shard * stride + bucket].
  std::vector<Cell> cells;
  std::array<std::atomic<double>, kShards> sums;
  std::size_t stride = 0;  // bounds.size() + 1

  explicit HistogramImpl(std::vector<double> b);
  void observe(double v) noexcept;
};

}  // namespace detail

/// Monotonic counter handle. Default-constructed handles are unbound
/// no-ops; handles from a registry stay valid for its lifetime.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n) const noexcept {
    if (impl_ != nullptr)
      impl_->cells[detail::shard_index()].value.fetch_add(
          n, std::memory_order_relaxed);
  }
  void inc() const noexcept { add(1); }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterImpl* impl) : impl_(impl) {}
  detail::CounterImpl* impl_ = nullptr;
};

/// Point-in-time gauge handle (set / add / running maximum).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const noexcept {
    if (impl_ != nullptr) impl_->value.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) const noexcept {
    if (impl_ != nullptr) impl_->value.fetch_add(d, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if `v` exceeds the current value — the
  /// high-water-mark primitive (executor queue depth).
  void update_max(std::int64_t v) const noexcept {
    if (impl_ == nullptr) return;
    std::int64_t cur = impl_->value.load(std::memory_order_relaxed);
    while (v > cur && !impl_->value.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeImpl* impl) : impl_(impl) {}
  detail::GaugeImpl* impl_ = nullptr;
};

/// Fixed-bucket histogram handle. Observations of integer values sum
/// exactly in the double accumulator, so integer-valued histograms
/// keep the cross-thread-count determinism guarantee.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const noexcept {
    if (impl_ != nullptr) impl_->observe(v);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramImpl* impl) : impl_(impl) {}
  detail::HistogramImpl* impl_ = nullptr;
};

/// Name → metric registry. find-or-create takes a mutex, so hoist
/// handle acquisition out of hot loops (bind once, mutate freely).
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& global();

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` must ascend; on re-registration the first bounds win.
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  /// Merges every shard into a name-sorted snapshot.
  Snapshot snapshot() const;

  /// Zeroes every value (registrations and handles stay valid).
  void reset();

 private:
  mutable Mutex metrics_mutex_{lockorder::Rank::kObsMetricsRegistry};
  std::map<std::string, std::unique_ptr<detail::CounterImpl>, std::less<>>
      counters_ FIST_GUARDED_BY(metrics_mutex_);
  std::map<std::string, std::unique_ptr<detail::GaugeImpl>, std::less<>>
      gauges_ FIST_GUARDED_BY(metrics_mutex_);
  std::map<std::string, std::unique_ptr<detail::HistogramImpl>, std::less<>>
      histograms_ FIST_GUARDED_BY(metrics_mutex_);
};

#else  // FISTFUL_NO_OBS: the whole layer compiles to empty stubs.

class Counter {
 public:
  void add(std::uint64_t) const noexcept {}
  void inc() const noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) const noexcept {}
  void add(std::int64_t) const noexcept {}
  void update_max(std::int64_t) const noexcept {}
};

class Histogram {
 public:
  void observe(double) const noexcept {}
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();
  Counter counter(std::string_view) { return {}; }
  Gauge gauge(std::string_view) { return {}; }
  Histogram histogram(std::string_view, std::vector<double>) { return {}; }
  Snapshot snapshot() const { return {}; }
  void reset() {}
};

#endif  // FISTFUL_NO_OBS

}  // namespace fist::obs
