// span.hpp — hierarchical scoped timers.
//
// A Span measures the wall-clock of a scope and records itself into
// the thread's active Trace (activated with a TraceScope). Spans nest
// lexically: a Span opened while another is open on the same thread
// becomes its child, so the Trace holds the pipeline's stage tree —
// the structure that replaced the flat StageTiming vector.
//
//   obs::Trace trace;
//   {
//     obs::TraceScope scope(trace);
//     obs::Span stage("h1");
//     { obs::Span child("h1.scan"); ... }
//   }
//   // trace.records(): [{h1, parent=none}, {h1.scan, parent=0}]
//
// Determinism: spans are recorded from the orchestrating thread in
// open order, and instrumented code emits the same span structure on
// its sequential and parallel paths, so the (name, parent) sequence
// is identical at every thread count — only the durations vary.
// tests/test_obs.cpp enforces this over the whole pipeline.
//
// Under FISTFUL_NO_OBS spans still measure (two clock reads per span;
// spans only wrap coarse phases) so ForensicPipeline::timings() keeps
// working, but nothing is recorded into any Trace.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/lock_order.hpp"

namespace fist::obs {

inline constexpr std::uint32_t kNoParent = 0xffffffffu;

/// One completed (or still-open) span in a Trace, in open order.
struct SpanRecord {
  std::string name;
  std::uint32_t parent = kNoParent;  ///< index into records(), or kNoParent
  std::uint32_t depth = 0;           ///< 0 for roots
  double millis = 0;                 ///< filled when the span closes
};

/// An append-only tree of spans. Thread-safe to record into, though
/// the determinism contract assumes one orchestrating thread.
class Trace {
 public:
  std::vector<SpanRecord> records() const;
  bool empty() const;
  void clear();

 private:
  friend class Span;
  std::uint32_t open(const char* name, std::uint32_t parent);
  void close(std::uint32_t index, double millis);

  mutable Mutex trace_mutex_{lockorder::Rank::kObsTrace};
  std::vector<SpanRecord> records_ FIST_GUARDED_BY(trace_mutex_);
};

/// Makes `trace` the calling thread's active trace for the scope's
/// lifetime; restores the previous active trace (and its open-span
/// stack) on destruction.
class TraceScope {
 public:
  enum class Policy {
    Always,        ///< activate unconditionally (nesting replaces)
    IfNoneActive,  ///< keep an already-active trace (pipeline default)
  };

  explicit TraceScope(Trace& trace, Policy policy = Policy::Always);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// True when this scope actually activated its trace.
  bool activated() const noexcept { return activated_; }

 private:
  Trace* previous_ = nullptr;
  std::vector<std::uint32_t> previous_stack_;
  bool activated_ = false;
};

/// The calling thread's active trace (nullptr outside any TraceScope).
Trace* active_trace() noexcept;

/// Scoped timer; records into the active trace on close (see header
/// comment for the FISTFUL_NO_OBS behavior).
class Span {
 public:
  explicit Span(const char* name);
  ~Span() { close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Stops the timer early (idempotent; the destructor calls it).
  void close() noexcept;

  /// Measured duration: final after close(), running elapsed before.
  double millis() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double millis_ = 0;
  bool closed_ = false;
  Trace* trace_ = nullptr;
  std::uint32_t index_ = 0;
};

}  // namespace fist::obs
