// telemetry.hpp — a localhost scrape endpoint for live runs.
//
// A deliberately tiny HTTP/1.0 server on a background thread, bound to
// 127.0.0.1 only (this is an introspection port, not a service — the
// fistd query daemon of ROADMAP item 3 is where real serving lives).
// fistctl --serve-metrics PORT starts one for the duration of the
// pipeline; port 0 asks the kernel for an ephemeral port, printed on
// stderr so scripts can scrape a parallel run without port juggling.
//
// Routes, all GET, all Connection: close:
//   /metrics  — render_prometheus over a fresh MetricsRegistry
//               snapshot (text/plain; version=0.0.4);
//   /progress — render_progress_json over the ProgressBoard;
//   /events   — the flight recorder as JSON Lines;
//   /healthz  — "ok\n" while the serve loop is alive.
//
// The accept loop polls with a 50 ms timeout and re-checks a stop
// flag, so stop() completes within one tick without pipe tricks.
// start/stop state sits under a fist::Mutex at rank kTelemetryServer;
// stop() is idempotent and safe from any thread — the pipeline's
// finish path and the quarantine exit path both call it.
//
// Scrapes mutate `telemetry.scrapes` (a documented determinism
// carve-out: how often a human polled is not a function of the input).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "core/lock_order.hpp"
#include "core/obs/metrics.hpp"

namespace fist::obs {

class TelemetryServer {
 public:
  TelemetryServer();
  ~TelemetryServer();  ///< stops if running
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serve
  /// thread. Returns false (with a stderr note) when the bind fails
  /// or a server is already running.
  bool start(std::uint16_t port);

  /// Joins the serve thread and closes the socket. Idempotent;
  /// callable from any thread, any number of times.
  void stop() noexcept;

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (the kernel's pick when started with 0);
  /// 0 when not running.
  std::uint16_t port() const noexcept {
    return port_.load(std::memory_order_acquire);
  }

 private:
  void serve_loop(int listen_fd);

  mutable Mutex state_mutex_{lockorder::Rank::kTelemetryServer};
  // fistlint:allow(detached-thread) the acceptor must outlive any one
  // pipeline run, so it cannot ride an Executor; stop() always joins.
  std::thread thread_ FIST_GUARDED_BY(state_mutex_);
  int listen_fd_ FIST_GUARDED_BY(state_mutex_) = -1;
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> port_{0};
  Counter scrapes_;  ///< telemetry.scrapes, bound at construction
};

}  // namespace fist::obs
