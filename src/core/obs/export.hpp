// export.hpp — renderers for metric snapshots and span traces.
//
// Three formats, one Snapshot:
//   * render_table      — aligned ASCII for terminals (fistctl
//                         --metrics-format table, bench stderr);
//   * render_json       — the machine-readable document fistctl
//                         --metrics-out and the BENCH_*.json reports
//                         embed; includes the span tree when given;
//   * render_prometheus — Prometheus text exposition format (metric
//                         names sanitized and prefixed "fist_").
//
// Output is deterministic: snapshots are name-sorted and numbers are
// formatted with fixed rules, so the golden-file tests in
// tests/test_obs_export.cpp compare whole documents.
#pragma once

#include <string>

#include "core/obs/metrics.hpp"
#include "core/obs/span.hpp"

namespace fist::obs {

/// Aligned ASCII tables (counters / gauges / histograms).
std::string render_table(const Snapshot& snapshot);

/// The `{"counters": ..., "gauges": ..., "histograms": ...}` JSON
/// object alone — embeddable into larger documents (bench reports).
std::string render_metrics_json_object(const Snapshot& snapshot);

/// Full JSON document: {"metrics": {...}} plus, when `trace` is
/// non-null, "spans": a nested array mirroring the span tree.
std::string render_json(const Snapshot& snapshot,
                        const Trace* trace = nullptr);

/// The nested span array alone: [{"name","ms","children"}...].
std::string render_spans_json_array(const Trace& trace);

/// Prometheus text exposition format.
std::string render_prometheus(const Snapshot& snapshot);

/// JSON string escaping (exposed for the bench report writer).
std::string json_escape(const std::string& s);

/// Canonical number formatting shared by the JSON renderers:
/// "%.17g" trimmed — integers render bare, doubles round-trip.
/// NOT valid for non-finite values — JSON has no NaN/Inf literals, so
/// callers must guard (the renderers omit non-finite quantiles).
std::string json_number(double v);

/// Prometheus sample-value formatting: json_number for finite values,
/// the spec spellings "NaN" / "+Inf" / "-Inf" otherwise.
std::string prom_number(double v);

/// Prometheus label-value escaping: backslash, double quote, and
/// newline gain backslashes (the exposition-format rules).
std::string prom_escape_label(const std::string& s);

}  // namespace fist::obs
