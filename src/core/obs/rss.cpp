#include "core/obs/rss.hpp"

#include <cstdio>

#include "core/obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fist::obs {

std::uint64_t parse_vm_hwm_bytes(std::string_view status_text) noexcept {
  // Find a "VmHWM:" at the start of a line.
  std::size_t pos = 0;
  while (true) {
    if (status_text.compare(pos, 6, "VmHWM:") == 0) break;
    pos = status_text.find('\n', pos);
    if (pos == std::string_view::npos) return 0;
    ++pos;
  }
  pos += 6;
  while (pos < status_text.size() &&
         (status_text[pos] == ' ' || status_text[pos] == '\t'))
    ++pos;
  // Digits only — a stray sign or letter makes the row malformed, and
  // malformed means "unknown", not a creatively wrapped number.
  if (pos >= status_text.size() || status_text[pos] < '0' ||
      status_text[pos] > '9')
    return 0;
  std::uint64_t kib = 0;
  while (pos < status_text.size() && status_text[pos] >= '0' &&
         status_text[pos] <= '9') {
    std::uint64_t digit = static_cast<std::uint64_t>(status_text[pos] - '0');
    if (kib > (~std::uint64_t{0} - digit) / 10) return 0;  // overflow
    kib = kib * 10 + digit;
    ++pos;
  }
  if (kib > ~std::uint64_t{0} / 1024) return 0;  // bytes would overflow
  return kib * 1024;
}

namespace {

std::uint64_t vm_hwm_bytes() noexcept {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  // /proc/self/status is small (a couple of KiB); a truncated read
  // just means the row parse below fails to 0.
  char buf[8192];
  std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  return parse_vm_hwm_bytes(std::string_view(buf, n));
}

}  // namespace

std::uint64_t peak_rss_bytes() noexcept {
  if (std::uint64_t hwm = vm_hwm_bytes(); hwm > 0) return hwm;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
  }
#endif
  return 0;
}

std::uint64_t sample_peak_rss() noexcept {
  std::uint64_t bytes = peak_rss_bytes();
  // 0 = no source on this host: leave the gauge unregistered rather
  // than report a zero-byte process.
  if (bytes == 0) return 0;
  static Gauge gauge = MetricsRegistry::global().gauge("mem.peak_rss");
  gauge.set(static_cast<std::int64_t>(bytes));
  return bytes;
}

}  // namespace fist::obs
