#include "core/obs/rss.hpp"

#include <cstdio>
#include <cstring>

#include "core/obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fist::obs {

namespace {

/// Parses "VmHWM:   123456 kB" out of /proc/self/status. Returns 0
/// when the file or the row is missing (non-Linux hosts).
std::uint64_t vm_hwm_bytes() noexcept {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + 6, "%llu", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

}  // namespace

std::uint64_t peak_rss_bytes() noexcept {
  if (std::uint64_t hwm = vm_hwm_bytes(); hwm > 0) return hwm;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
  }
#endif
  return 0;
}

std::uint64_t sample_peak_rss() noexcept {
  std::uint64_t bytes = peak_rss_bytes();
  static Gauge gauge = MetricsRegistry::global().gauge("mem.peak_rss");
  gauge.set(static_cast<std::int64_t>(bytes));
  return bytes;
}

}  // namespace fist::obs
