#include "core/obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdint>
#include <iterator>
#include <vector>

#include "core/obs/quantile.hpp"
#include "util/table.hpp"

namespace fist::obs {

namespace {

std::string format_ms(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

/// "name" sanitized for Prometheus: [a-zA-Z0-9_] survive, everything
/// else becomes '_'; the "fist_" prefix namespaces the process.
std::string prom_name(const std::string& name) {
  std::string out = "fist_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_span_array(std::string& out,
                       const std::vector<SpanRecord>& records,
                       const std::vector<std::vector<std::uint32_t>>& children,
                       const std::vector<std::uint32_t>& indices) {
  out += '[';
  bool first = true;
  for (std::uint32_t i : indices) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(records[i].name) +
           "\",\"ms\":" + format_ms(records[i].millis);
    if (!children[i].empty()) {
      out += ",\"children\":";
      append_span_array(out, records, children, children[i]);
    }
    out += '}';
  }
  out += ']';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return json_number(v);
}

std::string prom_escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string render_table(const Snapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty()) {
    TextTable t({"Counter", "Value"}, {Align::Left, Align::Right});
    for (const CounterValue& c : snapshot.counters)
      t.row({c.name, std::to_string(c.value)});
    out += t.render();
  }
  if (!snapshot.gauges.empty()) {
    TextTable t({"Gauge", "Value"}, {Align::Left, Align::Right});
    for (const GaugeValue& g : snapshot.gauges)
      t.row({g.name, std::to_string(g.value)});
    if (!out.empty()) out += '\n';
    out += t.render();
  }
  if (!snapshot.histograms.empty()) {
    TextTable t({"Histogram", "Count", "Sum", "p50", "p90", "p99", "Buckets"},
                {Align::Left, Align::Right, Align::Right, Align::Right,
                 Align::Right, Align::Right, Align::Left});
    for (const HistogramValue& h : snapshot.histograms) {
      std::string buckets;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (i > 0) buckets += ' ';
        buckets += (i < h.bounds.size()
                        ? "<=" + json_number(h.bounds[i])
                        : std::string("+inf")) +
                   ":" + std::to_string(h.buckets[i]);
      }
      t.row({h.name, std::to_string(h.count), json_number(h.sum),
             prom_number(histogram_quantile(h, 0.50)),
             prom_number(histogram_quantile(h, 0.90)),
             prom_number(histogram_quantile(h, 0.99)), buckets});
    }
    if (!out.empty()) out += '\n';
    out += t.render();
  }
  return out;
}

std::string render_metrics_json_object(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterValue& c : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(c.name) + "\":" + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeValue& g : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(g.name) + "\":" + std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramValue& h : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(h.name) + "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += json_number(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(h.buckets[i]);
    }
    out += "],\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + json_number(h.sum);
    // Quantiles only when defined AND finite: JSON has no NaN/Inf, so
    // an empty histogram simply lacks the keys.
    for (std::size_t q = 0; q < std::size(kExportQuantiles); ++q) {
      double v = histogram_quantile(h, kExportQuantiles[q]);
      if (std::isfinite(v))
        out += std::string(",\"") + kExportQuantileNames[q] +
               "\":" + json_number(v);
    }
    out += "}";
  }
  out += "}}";
  return out;
}

std::string render_spans_json_array(const Trace& trace) {
  std::vector<SpanRecord> records = trace.records();
  std::vector<std::vector<std::uint32_t>> children(records.size());
  std::vector<std::uint32_t> roots;
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    if (records[i].parent == kNoParent)
      roots.push_back(i);
    else
      children[records[i].parent].push_back(i);
  }
  std::string out;
  append_span_array(out, records, children, roots);
  return out;
}

std::string render_json(const Snapshot& snapshot, const Trace* trace) {
  std::string out = "{\"metrics\":" + render_metrics_json_object(snapshot);
  if (trace != nullptr)
    out += ",\"spans\":" + render_spans_json_array(*trace);
  out += "}\n";
  return out;
}

std::string render_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const CounterValue& c : snapshot.counters) {
    std::string name = prom_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeValue& g : snapshot.gauges) {
    std::string name = prom_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramValue& h : snapshot.histograms) {
    std::string name = prom_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      std::string le =
          i < h.bounds.size() ? json_number(h.bounds[i]) : "+Inf";
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + prom_number(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
    // Pre-computed quantile estimates as sibling gauges (summary-style
    // quantile labels would clash with the histogram type); an empty
    // histogram renders the spec's "NaN".
    for (std::size_t q = 0; q < std::size(kExportQuantiles); ++q) {
      std::string qname = name + "_" + kExportQuantileNames[q];
      out += "# TYPE " + qname + " gauge\n";
      out += qname + " " +
             prom_number(histogram_quantile(h, kExportQuantiles[q])) + "\n";
    }
  }
  return out;
}

}  // namespace fist::obs
