#include "core/obs/flightrec.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/lock_order.hpp"
#include "core/obs/export.hpp"
#include "core/obs/metrics.hpp"

namespace fist::obs {

namespace {

/// Steady-clock µs since the first call (≈ process start, pinned by
/// the static installer below during static initialization).
std::uint64_t now_us() noexcept {
  static const auto start = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

#ifndef FISTFUL_NO_OBS

FlightRecorder::FlightRecorder() {
  for (Slot& slot : slots_) {
    for (auto& w : slot.type_words) w.store(0, std::memory_order_relaxed);
    for (auto& w : slot.detail_words) w.store(0, std::memory_order_relaxed);
  }
}

FlightRecorder& FlightRecorder::global() {
  // Leaked: record() must stay callable from thread_local destructors
  // and the lock-order violation observer at any point of teardown.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

namespace {

/// Packs up to `words * 8` chars into word-sized relaxed stores
/// (zero-padded); the reader unpacks until the first NUL.
template <std::size_t N>
void store_chars(std::array<std::atomic<std::uint64_t>, N>& words,
                 std::string_view s) noexcept {
  char buf[N * 8] = {};
  const std::size_t n = s.size() < sizeof buf - 1 ? s.size() : sizeof buf - 1;
  std::memcpy(buf, s.data(), n);
  for (std::size_t i = 0; i < N; ++i) {
    std::uint64_t w;
    std::memcpy(&w, buf + i * 8, 8);
    words[i].store(w, std::memory_order_relaxed);
  }
}

template <std::size_t N>
std::string load_chars(
    const std::array<std::atomic<std::uint64_t>, N>& words) {
  char buf[N * 8 + 1];
  for (std::size_t i = 0; i < N; ++i) {
    std::uint64_t w = words[i].load(std::memory_order_relaxed);
    std::memcpy(buf + i * 8, &w, 8);
  }
  buf[N * 8] = '\0';
  return std::string(buf);
}

}  // namespace

void FlightRecorder::record(std::string_view type, std::string_view detail,
                            std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[s % kCapacity];
  // Seqlock write: mark torn (RMW, so the marker orders against the
  // payload stores), fill, publish with a release store of 1 + seq.
  slot.seq.exchange(kTornSeq, std::memory_order_acq_rel);
  store_chars(slot.type_words, type);
  store_chars(slot.detail_words, detail);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.t_us.store(now_us(), std::memory_order_relaxed);
  slot.seq.store(s + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t start = head > kCapacity ? head - kCapacity : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(head - start));
  for (std::uint64_t s = start; s < head; ++s) {
    const Slot& slot = slots_[s % kCapacity];
    const std::uint64_t want = s + 1;
    if (slot.seq.load(std::memory_order_acquire) != want) continue;
    FlightEvent e;
    e.type = load_chars(slot.type_words);
    e.detail = load_chars(slot.detail_words);
    e.a = slot.a.load(std::memory_order_relaxed);
    e.b = slot.b.load(std::memory_order_relaxed);
    e.t_us = slot.t_us.load(std::memory_order_relaxed);
    e.seq = s;
    // Seqlock read validation: if a lapping writer touched the slot
    // while we copied, the sequence moved — drop the torn copy.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) continue;
    out.push_back(std::move(e));
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const noexcept {
  return head_.load(std::memory_order_relaxed);
}

void FlightRecorder::reset() noexcept {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_release);
}

#else

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

#endif  // FISTFUL_NO_OBS

namespace {

// Bound at static initialization (single-threaded, nothing held) so
// flight_event never takes the metrics-registry mutex itself — it may
// run under ANY lock, including inside the lock-order violation
// observer. Zero-initialized before construction, so a call during
// another TU's static init degrades to an unbound no-op counter.
struct FlightInit {
  Counter events;
  FlightInit();
};

void record_lockorder_violation(lockorder::Rank held,
                                lockorder::Rank acquiring) {
  char detail[96];
  std::snprintf(detail, sizeof detail, "acquiring %s while holding %s",
                lockorder::rank_name(acquiring), lockorder::rank_name(held));
  flight_event("flight.lockorder_violation", detail,
               static_cast<std::uint64_t>(held),
               static_cast<std::uint64_t>(acquiring));
}

FlightInit::FlightInit()
    : events(MetricsRegistry::global().counter("flight.events")) {
  now_us();  // pin the epoch
  lockorder::set_violation_observer(&record_lockorder_violation);
}

FlightInit g_flight_init;

}  // namespace

void flight_event(std::string_view type, std::string_view detail,
                  std::uint64_t a, std::uint64_t b) noexcept {
  FlightRecorder::global().record(type, detail, a, b);
  g_flight_init.events.inc();
}

std::string render_events_jsonl(const std::vector<FlightEvent>& events) {
  std::string out;
  for (const FlightEvent& e : events) {
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"t_us\":" + std::to_string(e.t_us);
    out += ",\"type\":\"" + json_escape(e.type) + "\"";
    out += ",\"detail\":\"" + json_escape(e.detail) + "\"";
    out += ",\"a\":" + std::to_string(e.a);
    out += ",\"b\":" + std::to_string(e.b);
    out += "}\n";
  }
  return out;
}

bool dump_flight_events(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[flightrec] cannot write %s\n", path.c_str());
    return false;
  }
  out << render_events_jsonl(FlightRecorder::global().events());
  out.flush();
  if (!out) {
    std::fprintf(stderr, "[flightrec] write failed: %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace fist::obs
