#include "core/obs/metrics.hpp"

// fistlint:allow-file(alloc-under-lock,unbounded-growth) the registry
// IS the allocation site: instruments are interned once per name and
// live forever, and snapshot() builds its result under the lock at
// scrape cadence (~1/s). Hot-path increments go through the lock-free
// cells and never touch metrics_mutex_.

#include <algorithm>

namespace fist::obs {

namespace {

template <typename T>
const T* find_by_name(const std::vector<T>& values,
                      std::string_view name) noexcept {
  for (const T& v : values)
    if (v.name == name) return &v;
  return nullptr;
}

}  // namespace

const CounterValue* Snapshot::counter(std::string_view name) const noexcept {
  return find_by_name(counters, name);
}

const GaugeValue* Snapshot::gauge(std::string_view name) const noexcept {
  return find_by_name(gauges, name);
}

const HistogramValue* Snapshot::histogram(
    std::string_view name) const noexcept {
  return find_by_name(histograms, name);
}

#ifndef FISTFUL_NO_OBS

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return id;
}

HistogramImpl::HistogramImpl(std::vector<double> b)
    : bounds(std::move(b)), stride(bounds.size() + 1) {
  cells = std::vector<Cell>(kShards * stride);
  for (auto& s : sums) s.store(0, std::memory_order_relaxed);
}

void HistogramImpl::observe(double v) noexcept {
  std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  std::size_t shard = shard_index();
  cells[shard * stride + bucket].value.fetch_add(1,
                                                 std::memory_order_relaxed);
  // fetch_add on atomic<double> (CAS loop on most targets): exact for
  // integer-valued observations, which is all the determinism contract
  // covers.
  sums[shard].fetch_add(v, std::memory_order_relaxed);
}

}  // namespace detail

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter MetricsRegistry::counter(std::string_view name) {
  LockGuard lock(metrics_mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<detail::CounterImpl>())
             .first;
  return Counter(it->second.get());
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  LockGuard lock(metrics_mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_
             .emplace(std::string(name), std::make_unique<detail::GaugeImpl>())
             .first;
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  LockGuard lock(metrics_mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<detail::HistogramImpl>(
                          std::move(bounds)))
             .first;
  return Histogram(it->second.get());
}

Snapshot MetricsRegistry::snapshot() const {
  LockGuard lock(metrics_mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, impl] : counters_) {
    std::uint64_t total = 0;
    for (const detail::Cell& cell : impl->cells)
      total += cell.value.load(std::memory_order_relaxed);
    snap.counters.push_back(CounterValue{name, total});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, impl] : gauges_)
    snap.gauges.push_back(
        GaugeValue{name, impl->value.load(std::memory_order_relaxed)});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, impl] : histograms_) {
    HistogramValue hv;
    hv.name = name;
    hv.bounds = impl->bounds;
    hv.buckets.assign(impl->stride, 0);
    for (std::size_t shard = 0; shard < detail::kShards; ++shard) {
      for (std::size_t b = 0; b < impl->stride; ++b)
        hv.buckets[b] += impl->cells[shard * impl->stride + b].value.load(
            std::memory_order_relaxed);
      hv.sum += impl->sums[shard].load(std::memory_order_relaxed);
    }
    for (std::uint64_t c : hv.buckets) hv.count += c;
    snap.histograms.push_back(std::move(hv));
  }
  return snap;  // std::map iteration order == sorted by name
}

void MetricsRegistry::reset() {
  LockGuard lock(metrics_mutex_);
  for (auto& [name, impl] : counters_)
    for (detail::Cell& cell : impl->cells)
      cell.value.store(0, std::memory_order_relaxed);
  for (auto& [name, impl] : gauges_)
    impl->value.store(0, std::memory_order_relaxed);
  for (auto& [name, impl] : histograms_) {
    for (detail::Cell& cell : impl->cells)
      cell.value.store(0, std::memory_order_relaxed);
    for (auto& s : impl->sums) s.store(0, std::memory_order_relaxed);
  }
}

#else

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

#endif  // FISTFUL_NO_OBS

}  // namespace fist::obs
