// checkpoint.hpp — crash-safe checkpoint/resume for the forensic
// pipeline.
//
// A multi-hour ingest killed at 90% should not start over. The pipeline
// checkpoints its expensive stages (chain view, Heuristic-1 forest,
// Heuristic-2 labels) as binary artifacts next to a small text
// manifest; every file is written atomically (tmp + rename), so a kill
// at any instant leaves either the previous consistent checkpoint or
// the new one — never a torn state. On resume, an artifact is loaded
// only when its recorded digest still matches the bytes on disk AND
// the manifest's input digests (block store, tag feed) match the
// current inputs; anything stale is silently recomputed. A resumed run
// is bit-identical to an uninterrupted one.
//
// Lock-free by design: the manifest writer is only ever driven from
// the pipeline thread, between parallel stages, so it holds no locks
// and carries no rank in the lock hierarchy (src/core/lock_order.hpp);
// crash safety comes from atomic file replacement, not mutual
// exclusion.
#pragma once

#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "chain/ingest.hpp"
#include "cluster/heuristic1.hpp"
#include "cluster/heuristic2.hpp"
#include "cluster/unionfind.hpp"
#include "util/bytes.hpp"

namespace fist {

/// Writes `data` to `path` atomically: the bytes land in `<path>.tmp`
/// and are renamed over the target, so readers (and a crash at any
/// point) see either the old content or the new — never a prefix.
/// Throws IoError on any filesystem failure.
void atomic_write_file(const std::filesystem::path& path, ByteView data);

/// Reads a whole file. Throws IoError if it cannot be opened or read.
Bytes read_file(const std::filesystem::path& path);

/// Lowercase hex SHA-256 of a file's contents; used to fingerprint
/// checkpoint inputs and artifacts. Throws IoError on unreadable files.
std::string file_digest_hex(const std::filesystem::path& path);

/// Lowercase hex SHA-256 of an in-memory buffer.
std::string digest_hex(ByteView data);

/// One checkpointed stage artifact: a sibling file plus the digest its
/// bytes had when written.
struct CheckpointArtifact {
  std::string file;    ///< filename, relative to the manifest directory
  std::string digest;  ///< hex SHA-256 of the artifact bytes
};

/// The checkpoint manifest: which stages have been persisted, under
/// what inputs, and everything lenient ingest quarantined (so a
/// resumed run reports the same summary and exit code without
/// re-reading the corrupt records).
struct CheckpointManifest {
  RecoveryPolicy recovery = RecoveryPolicy::Strict;
  std::string chain_digest;  ///< input fingerprint: the block store file
  std::string tags_digest;   ///< input fingerprint: the tag feed
  std::map<std::string, CheckpointArtifact> artifacts;  ///< stage → artifact
  IngestReport ingest;       ///< quarantine record from the original run

  /// Parses a manifest. Returns nullopt when the file is missing or
  /// does not parse as a version-1 manifest (a corrupt manifest means
  /// "no checkpoint", never an error — resume degrades to recompute).
  static std::optional<CheckpointManifest> load(
      const std::filesystem::path& path);

  /// Writes the manifest atomically. Throws IoError on failure.
  void save(const std::filesystem::path& path) const;

  /// The artifact file path for `stage` under manifest path `base`
  /// (sibling file `<base filename>.<stage>`).
  static std::filesystem::path artifact_path(
      const std::filesystem::path& base, const std::string& stage);
};

/// Stage-artifact codecs. Each round-trips exactly the state the
/// pipeline needs to continue past that stage; each deserializer
/// throws ParseError on malformed bytes (the caller treats that as a
/// stale artifact and recomputes).
///
/// The union-find is serialized canonically — element count plus each
/// element's find_const() root — and rebuilt by re-uniting, so the
/// restored forest represents the identical partition (and therefore
/// yields the identical Clustering) even though its internal
/// parent/rank layout may differ.
Bytes encode_h1_artifact(const UnionFind& uf, const H1Stats& stats);
void decode_h1_artifact(ByteView raw, UnionFind& uf, H1Stats& stats);

Bytes encode_h2_artifact(const H2Result& result);
H2Result decode_h2_artifact(ByteView raw);

}  // namespace fist
