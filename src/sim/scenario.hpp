// scenario.hpp — scripted case studies and their ground-truth records.
//
// Section 5 of the paper studies two kinds of flows: the dissolution of
// the Silk-Road-associated 1DkyBEKt hoard (Table 2) and seven thefts
// (Table 3). The simulator replays both as scripted scenarios and
// journals exactly what happened, so benches can compare the forensic
// reconstruction against truth.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "chain/transaction.hpp"
#include "encoding/address.hpp"
#include "util/amount.hpp"

namespace fist::sim {

/// A theft to replay (Table 3 rows are the defaults).
struct TheftScenario {
  std::string label;       ///< e.g. "Betcoin"
  std::string victim;      ///< service name robbed
  // fistlint:allow(float-amount) scenario parameter in BTC, converted
  // once via btc_fraction() at theft time
  double btc = 0;          ///< stolen amount in BTC (scaled if needed)
  int day = 0;             ///< theft day (offset into the simulation)
  /// Movement program, in order: 'A' aggregation, 'P' peeling chain,
  /// 'S' split, 'F' folding — e.g. "A/P/S".
  std::string movement;
  bool to_exchange = true; ///< route some peels into exchange deposits
  /// Fraction of loot that never moves (the Trojan thief's 2857/3257).
  double dormant_fraction = 0.0;
  /// Days after the theft before the thief starts moving coins.
  int dormancy_days = 2;
};

/// One peel that reached a known service (truth side).
struct PeelTruth {
  int chain = 0;           ///< which peeling chain (0-based)
  int hop = 0;             ///< hop index along the chain
  std::string service;     ///< recipient service name ("" = unnamed user)
  Amount value = 0;
  Hash256 txid;
};

/// Journal of one executed theft.
struct TheftRecord {
  TheftScenario scenario;
  std::vector<Hash256> theft_txids;     ///< the theft transactions
  std::vector<Address> thief_addresses; ///< loot landing addresses
  Amount stolen = 0;
  Amount dormant = 0;                   ///< never moved
  std::vector<PeelTruth> exchange_peels;///< peels that hit exchanges
  std::string executed_movement;        ///< phases actually performed
};

/// Journal of the hoard (1DkyBEKt analogue).
struct HoardRecord {
  Address hoard_address;
  std::vector<Hash256> deposit_txids;      ///< aggregate deposits in
  std::vector<Hash256> withdrawal_txids;   ///< the dissolution sends
  Amount peak_balance = 0;
  Hash256 final_split_txid;                ///< 158,336-analogue split
  std::array<OutPoint, 3> chain_starts{};  ///< the three peeling chains
  std::vector<PeelTruth> peels;            ///< all peels, by chain/hop
};

/// The default Table-3 theft book (amounts/dates from the paper,
/// days re-anchored onto the simulated calendar by the world).
std::vector<TheftScenario> default_thefts();

}  // namespace fist::sim
