// stream.hpp — streaming block generation.
//
// World::run() materializes the whole chain in an in-memory store —
// fine at test scale, fatal at paper scale (16M transactions of block
// history dwarf the simulator's own working state). BlockStreamer runs
// the same World but diverts each mined block through a bounded buffer
// the caller drains block by block, so generation memory holds at most
// one day of blocks plus the economy's live state (wallets, UTXO set)
// — never the history.
//
// Determinism contract: the block sequence next() yields is
// byte-identical to the store World::run() would have filled, at any
// worker count. The only parallelized step is the proof-of-work nonce
// search, and it returns the smallest valid nonce — exactly what the
// sequential search finds — no matter how the candidate range is
// partitioned (differential-tested in tests/test_sim_stream.cpp).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>

#include "core/executor.hpp"
#include "core/obs/progress.hpp"
#include "sim/world.hpp"

namespace fist::sim {

/// Finds the smallest nonce >= header.nonce whose block hash meets
/// `header.bits`, searching candidate waves in parallel over `exec`.
/// Bit-identical to the sequential `while (!check) ++nonce` loop for
/// every worker count. Throws ValidationError when the 32-bit nonce
/// space is exhausted (cannot happen at kEasyBits difficulty).
std::uint32_t mine_nonce(const BlockHeader& header, Executor& exec);

/// Pull-style generator over a World: each next() yields the chain's
/// next block, running simulation days on demand.
class BlockStreamer {
 public:
  /// `exec` parallelizes the nonce search when provided (nullptr or a
  /// 1-worker executor take the sequential path unchanged).
  explicit BlockStreamer(const WorldConfig& config, Executor* exec = nullptr);

  /// The next block in chain order, or nullopt after the last. The
  /// final call also runs World::finish(), so world().tag_feed() is
  /// complete once the stream is drained.
  std::optional<Block> next();

  /// Drains the remaining stream through `sink`.
  void run(const std::function<void(const Block&)>& sink);

  /// High-water mark of the internal buffer: never exceeds
  /// config.blocks_per_day (one run_day's output), which is the
  /// bounded-memory guarantee the scale tests assert.
  std::size_t max_buffered() const noexcept { return max_buffered_; }

  /// The underlying economy (ground truth, tag feed, thefts, ...).
  /// Journal state is only final once the stream is drained.
  World& world() noexcept { return world_; }
  const World& world() const noexcept { return world_; }

 private:
  World world_;
  int days_ = 0;
  int days_run_ = 0;
  std::deque<Block> buffer_;
  std::size_t max_buffered_ = 0;
  obs::ProgressStage days_progress_;  ///< "sim.days", one tick per day
};

}  // namespace fist::sim
