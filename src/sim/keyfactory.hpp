// keyfactory.hpp — address minting for simulated wallets.
//
// Two modes:
//  * Real — a genuine secp256k1 keypair per address (privkey derived
//    from the deterministic seed stream); spends carry real ECDSA
//    signatures. Cryptographically faithful but ~10^3× slower.
//  * Fast — a pseudo public key (random 33 bytes with a valid SEC1
//    prefix) hashed through the genuine HASH160/Base58Check pipeline;
//    spends carry structurally correct but unverifiable signatures.
//
// Every forensic heuristic in the paper sees only address strings and
// transaction structure, so Fast mode changes nothing downstream; Real
// mode exists to demonstrate the full pipeline and for tests.
#pragma once

#include <optional>

#include "crypto/ecdsa.hpp"
#include "encoding/address.hpp"
#include "util/rng.hpp"

namespace fist::sim {

/// Key generation mode.
enum class KeyMode { Fast, Real };

/// One minted address: the pubkey bytes it commits to and, in Real
/// mode, the signing key.
struct MintedKey {
  Address address;
  Bytes pubkey;                        ///< SEC1 bytes (33, compressed)
  std::optional<PrivateKey> privkey;   ///< present only in Real mode
};

/// Deterministic address factory.
class KeyFactory {
 public:
  KeyFactory(KeyMode mode, Rng rng) : mode_(mode), rng_(std::move(rng)) {}

  /// Mints a fresh P2PKH address.
  MintedKey mint();

  KeyMode mode() const noexcept { return mode_; }

  /// Addresses minted so far.
  std::uint64_t minted() const noexcept { return count_; }

 private:
  KeyMode mode_;
  Rng rng_;
  std::uint64_t count_ = 0;
};

}  // namespace fist::sim
