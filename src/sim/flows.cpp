#include "sim/flows.hpp"

namespace fist::sim {

std::optional<WalletCoin> largest_coin(const Wallet& wallet, int height,
                                       int maturity) {
  const WalletCoin* best = nullptr;
  for (const WalletCoin& c : wallet.coins()) {
    if (c.coinbase && height - c.height < maturity) continue;
    if (best == nullptr || c.value > best->value) best = &c;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<BuiltPayment> peel_hop(World& world, Actor& actor,
                                     const OutPoint& coin, const Address& to,
                                     Amount value) {
  return peel_hop(world, actor, actor.wallet(), coin, to, value);
}

std::optional<BuiltPayment> peel_hop(World& world, Actor& actor,
                                     Wallet& wallet, const OutPoint& coin,
                                     const Address& to, Amount value) {
  PaymentSpec spec;
  spec.outputs.emplace_back(to, value);
  spec.spend_coin = coin;
  spec.force_fresh_change = true;
  std::optional<BuiltPayment> built =
      wallet.pay(spec, world.height(), world.maturity());
  if (!built) return std::nullopt;
  world.submit(actor.id(), *built, wallet.policy().fee);
  return built;
}

std::optional<BuiltPayment> peel_next(World& world, Actor& actor,
                                      const BuiltPayment& prev,
                                      const Address& to, Amount value) {
  if (!prev.change_address) return std::nullopt;
  OutPoint tip{prev.txid,
               static_cast<std::uint32_t>(prev.tx.outputs.size() - 1)};
  return peel_hop(world, actor, tip, to, value);
}

std::optional<BuiltPayment> aggregate(World& world, Actor& actor,
                                      std::size_t min_coins,
                                      std::size_t max_coins,
                                      std::size_t skip_oldest) {
  Address target = actor.wallet().fresh_address();
  std::optional<BuiltPayment> built =
      actor.wallet().sweep(target, min_coins, max_coins, world.height(),
                           world.maturity(), skip_oldest);
  if (!built) return std::nullopt;
  world.submit(actor.id(), *built, actor.wallet().policy().fee);
  return built;
}

std::optional<BuiltPayment> split(World& world, Actor& actor, int ways) {
  std::optional<WalletCoin> coin =
      largest_coin(actor.wallet(), world.height(), world.maturity());
  if (!coin || ways < 2) return std::nullopt;
  Amount fee = actor.wallet().policy().fee;
  Amount each = (coin->value - fee) / ways;
  if (each <= actor.wallet().policy().dust) return std::nullopt;

  PaymentSpec spec;
  spec.spend_coin = coin->outpoint;
  spec.force_fresh_change = true;
  // ways-1 explicit outputs; the remainder goes out as "change" to a
  // fresh address, making the split an all-fresh-outputs transaction.
  for (int i = 0; i < ways - 1; ++i)
    spec.outputs.emplace_back(actor.wallet().fresh_address(), each);
  std::optional<BuiltPayment> built =
      actor.wallet().pay(spec, world.height(), world.maturity());
  if (!built) return std::nullopt;
  world.submit(actor.id(), *built, fee);
  return built;
}

}  // namespace fist::sim
