// world.hpp — the synthetic Bitcoin economy.
//
// World wires together actors (users + the service ecosystem of the
// paper's Table 1), a mempool, and a miner; each simulated day actors
// transact and blocks are mined, validated by a real ChainState, and
// appended to a wire-format block store. The result is a block chain
// whose *structure* reproduces the idioms of use the paper's heuristics
// exploit, together with a ground-truth journal and a tag feed.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/blockstore.hpp"
#include "chain/chainstate.hpp"
#include "sim/actor.hpp"
#include "sim/scenario.hpp"
#include "tag/tagstore.hpp"
#include "util/rng.hpp"
#include "util/timeutil.hpp"

namespace fist::sim {

/// Simulation parameters.
struct WorldConfig {
  std::uint64_t seed = 42;
  int days = 240;                ///< simulated duration
  int blocks_per_day = 12;       ///< block cadence (2h blocks)
  int coinbase_maturity = 60;    ///< scaled-down from Bitcoin's 100
  int halving_interval = 2000;   ///< subsidy halving height
  Timestamp start_time = 0;      ///< 0 → 2010-12-29 (Figure 2's origin)
  KeyMode key_mode = KeyMode::Fast;
  /// Run the full script interpreter on every input while connecting
  /// blocks. Only meaningful with KeyMode::Real (fast-mode placeholder
  /// signatures fail genuine ECDSA verification).
  bool verify_scripts = false;
  std::size_t max_block_txs = 4000;

  // Population.
  int users = 400;
  double user_daily_activity = 0.5;  ///< expected actions per user-day

  // Service ecosystem sizes (paper Table 1 proportions).
  int pools = 10;
  int wallet_services = 8;
  int bank_exchanges = 10;
  int fixed_exchanges = 6;
  int vendors = 12;
  int gambling = 8;
  int mixers = 4;

  // Idioms of use.
  double p_self_change = 0.21;    ///< ~23% of 2013 spends (§4.1)
  double p_reuse_change = 0.02;   ///< change-address reuse (FP source)
  double p_reuse_receive = 0.45;  ///< receive-address reuse (2012-era clients)
  double p_gamble = 0.32;         ///< share of user actions that are bets
  double p_mix = 0.03;            ///< share of user actions using mixers

  // Case studies.
  bool enable_hoard = true;
  bool enable_thefts = true;
  bool enable_probe = true;      ///< the §3 re-identification actor
  double scraped_tag_fraction = 0.2;  ///< share of service addrs scraped
  std::size_t scraped_tag_cap = 80;   ///< per-service scrape cap
};

/// A transaction waiting to be mined.
struct PendingTx {
  Transaction tx;
  Amount fee = 0;
};

/// The running world.
class World {
 public:
  explicit World(const WorldConfig& config);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs the whole simulation.
  void run();

  /// Runs a single day (exposed for incremental tests).
  void run_day();

  /// Post-run finalization (scraped-tag feed + sim.tags metric).
  /// Idempotent; run() calls it, and so does BlockStreamer once the
  /// last day has been generated.
  void finish();

  /// Diverts mined blocks to `sink` instead of the in-memory store():
  /// the streaming-generation path, where history must not accumulate.
  /// Every block is still validated by the real ChainState first. The
  /// emitted bytes are identical to what store() would have held — the
  /// sink sees the same blocks in the same order.
  void set_block_sink(std::function<void(const Block&)> sink) {
    block_sink_ = std::move(sink);
  }

  /// Overrides the proof-of-work nonce search. The miner MUST return
  /// the smallest nonce (counting up from the header's current value)
  /// whose block hash satisfies the header's difficulty bits — the
  /// value the built-in sequential loop finds — or generation stops
  /// being bit-identical across configurations.
  void set_nonce_miner(std::function<std::uint32_t(const BlockHeader&)> miner) {
    nonce_miner_ = std::move(miner);
  }

  // ---- results --------------------------------------------------------
  const MemoryBlockStore& store() const noexcept { return store_; }
  const GroundTruth& truth() const noexcept { return truth_; }
  const ChainState& chainstate() const noexcept { return chainstate_; }
  const std::vector<TagEntry>& tag_feed() const noexcept { return tags_; }
  const std::vector<TheftRecord>& thefts() const noexcept { return thefts_; }
  const HoardRecord* hoard() const noexcept { return hoard_.get(); }
  std::size_t actor_count() const noexcept { return actors_.size(); }

  /// Total transactions submitted (excluding coinbases).
  std::uint64_t tx_count() const noexcept { return txs_submitted_; }

  // ---- API used by actors --------------------------------------------
  /// Queues a built payment for mining, credits recipients (0-conf) and
  /// fires their deposit hooks.
  void submit(ActorId sender, const BuiltPayment& built, Amount fee);

  int height() const noexcept { return chainstate_.height(); }
  int day() const noexcept { return day_; }
  Timestamp now() const noexcept { return now_; }
  int maturity() const noexcept { return config_.coinbase_maturity; }
  const WorldConfig& config() const noexcept { return config_; }

  Actor& actor(ActorId id);
  const Actor& actor(ActorId id) const;

  /// Actor lookup by unique name (service names are unique).
  Actor* find_actor(const std::string& name) noexcept;

  /// All actors of a category (services in creation order = popularity
  /// order; index 0 is the "Mt. Gox" of its category).
  const std::vector<ActorId>& of_category(Category c) const;

  /// Zipf-popularity pick within a category.
  ActorId pick_service(Category c, Rng& rng);

  /// Uniformly random ordinary user.
  ActorId random_user(Rng& rng);

  /// Public chain data: a transaction seen today (mempool/new blocks),
  /// as an on-chain observer could fetch it. nullptr if unknown.
  const Transaction* find_recent_tx(const Hash256& txid) const noexcept;

  Rng& rng() noexcept { return rng_; }

  /// Appends an entry to the tag feed (used by the probe actor).
  void add_tag(const Address& addr, Tag tag) {
    tags_.push_back(TagEntry{addr, std::move(tag)});
  }

  /// Records of scripted scenarios (filled by hoard/thief actors).
  HoardRecord* mutable_hoard() noexcept { return hoard_.get(); }
  std::vector<TheftRecord>& mutable_thefts() noexcept { return thefts_; }

  /// Registers any newly minted keys of all actors with ground truth.
  void sync_keys();

 private:
  friend class WorldBuilder;

  ActorId add_actor(std::unique_ptr<Actor> actor);
  Wallet make_wallet(double p_self_change, double p_reuse_change,
                     double p_reuse_receive);
  void build_population();
  void mine_block();
  void generate_scraped_tags();

  WorldConfig config_;
  Rng rng_;
  Timestamp now_ = 0;
  int day_ = 0;

  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<std::vector<std::size_t>> keys_registered_;  ///< [actor][wallet]
  std::unordered_map<std::string, ActorId> actor_by_name_;
  std::vector<std::vector<ActorId>> by_category_;
  std::vector<ActorId> users_;
  std::vector<ActorId> pool_ids_;
  std::vector<double> pool_hashpower_;

  GroundTruth truth_;
  std::vector<PendingTx> mempool_;
  std::unordered_map<Hash256, Transaction> recent_txs_;
  MemoryBlockStore store_;
  ChainState chainstate_;

  std::vector<TagEntry> tags_;
  std::vector<TheftRecord> thefts_;
  std::unique_ptr<HoardRecord> hoard_;

  std::uint64_t txs_submitted_ = 0;
  std::uint64_t coinbase_counter_ = 0;
  bool finished_ = false;
  std::function<void(const Block&)> block_sink_;
  std::function<std::uint32_t(const BlockHeader&)> nonce_miner_;
};

/// Extracts the spender address of a P2PKH scriptSig (public
/// information any chain observer has): HASH160 of the pushed pubkey.
std::optional<Address> spender_address(const Script& script_sig) noexcept;

}  // namespace fist::sim
