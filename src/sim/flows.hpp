// flows.hpp — reusable money-movement idioms.
//
// Peeling chains, aggregations and splits are performed by several
// actors (pools, exchange withdrawals, the hoard, thieves); these
// helpers implement them once over the Wallet/World API.
#pragma once

#include <optional>

#include "sim/actor.hpp"
#include "sim/world.hpp"

namespace fist::sim {

/// The wallet's largest mature spendable coin, if any.
std::optional<WalletCoin> largest_coin(const Wallet& wallet, int height,
                                       int maturity);

/// Executes one peel hop: spends exactly `coin`, pays (to, value), and
/// sends the remainder to a fresh change address. Submits the tx.
/// Returns the built payment (whose change output is the next hop's
/// coin), or nullopt if the coin cannot cover value + fee.
std::optional<BuiltPayment> peel_hop(World& world, Actor& actor,
                                     const OutPoint& coin, const Address& to,
                                     Amount value);

/// As above but spending from a specific wallet of the actor (hoards
/// and cold stores are side wallets).
std::optional<BuiltPayment> peel_hop(World& world, Actor& actor,
                                     Wallet& wallet, const OutPoint& coin,
                                     const Address& to, Amount value);

/// Spends the chain tip (change of `prev`) for the next hop. Undefined
/// if `prev` had no change output.
std::optional<BuiltPayment> peel_next(World& world, Actor& actor,
                                      const BuiltPayment& prev,
                                      const Address& to, Amount value);

/// Aggregates up to `max_coins` of the actor's coins into one fresh
/// address ("A"; with foreign-sourced coins present this is what the
/// paper calls folding, "F"). Submits the tx. `skip_oldest` holds back
/// that many of the oldest coins.
std::optional<BuiltPayment> aggregate(World& world, Actor& actor,
                                      std::size_t min_coins,
                                      std::size_t max_coins,
                                      std::size_t skip_oldest = 0);

/// Splits the largest coin into `ways` fresh addresses ("S").
std::optional<BuiltPayment> split(World& world, Actor& actor, int ways);

}  // namespace fist::sim
