#include "sim/stream.hpp"

#include <algorithm>

#include "chain/pow.hpp"
#include "util/error.hpp"

namespace fist::sim {

std::uint32_t mine_nonce(const BlockHeader& header, Executor& exec) {
  if (exec.inline_mode()) {
    BlockHeader h = header;
    while (!check_proof_of_work(h.hash(), h.bits)) {
      if (h.nonce == 0xffffffffu)
        throw ValidationError("mine_nonce: nonce space exhausted");
      ++h.nonce;
    }
    return h.nonce;
  }

  // Parallel waves over ascending candidate ranges. Each lane scans a
  // small contiguous chunk for its lowest valid nonce; the wave result
  // is the minimum across lanes — the global smallest valid nonce of
  // the wave regardless of how lanes are scheduled, so the answer
  // matches the sequential search exactly. At kEasyBits (~1/256 hashes
  // qualify) the first wave almost always hits.
  constexpr std::uint64_t kChunk = 64;
  const std::uint64_t lanes = exec.worker_count() * 2;
  const std::uint64_t wave = lanes * kChunk;
  constexpr std::uint64_t kNonceEnd = 0x100000000ull;
  constexpr std::uint64_t kNoNonce = 0xffffffffffffffffull;
  std::vector<std::uint64_t> best(lanes);
  for (std::uint64_t base = header.nonce; base < kNonceEnd; base += wave) {
    std::fill(best.begin(), best.end(), kNoNonce);
    exec.parallel_for(0, lanes, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t lane = lo; lane < hi; ++lane) {
        std::uint64_t begin = base + lane * kChunk;
        std::uint64_t end = std::min(begin + kChunk, kNonceEnd);
        BlockHeader h = header;
        for (std::uint64_t n = begin; n < end; ++n) {
          h.nonce = static_cast<std::uint32_t>(n);
          if (check_proof_of_work(h.hash(), h.bits)) {
            best[lane] = n;
            break;
          }
        }
      }
    });
    std::uint64_t lowest = kNoNonce;
    for (std::uint64_t b : best) lowest = std::min(lowest, b);
    if (lowest != kNoNonce) return static_cast<std::uint32_t>(lowest);
  }
  throw ValidationError("mine_nonce: nonce space exhausted");
}

BlockStreamer::BlockStreamer(const WorldConfig& config, Executor* exec)
    : world_(config), days_(config.days) {
  days_progress_ = obs::ProgressBoard::global().begin_stage(
      "sim.days", static_cast<std::uint64_t>(days_ > 0 ? days_ : 0));
  world_.set_block_sink([this](const Block& block) {
    buffer_.push_back(block);
    max_buffered_ = std::max(max_buffered_, buffer_.size());
  });
  if (exec != nullptr && !exec->inline_mode()) {
    Executor* e = exec;
    world_.set_nonce_miner(
        [e](const BlockHeader& header) { return mine_nonce(header, *e); });
  }
}

std::optional<Block> BlockStreamer::next() {
  while (buffer_.empty() && days_run_ < days_) {
    world_.run_day();
    ++days_run_;
    days_progress_.advance();
    obs::progress_console_tick();
  }
  if (buffer_.empty()) {
    days_progress_.finish();
    world_.finish();
    return std::nullopt;
  }
  Block block = std::move(buffer_.front());
  buffer_.pop_front();
  return block;
}

void BlockStreamer::run(const std::function<void(const Block&)>& sink) {
  while (std::optional<Block> block = next()) sink(*block);
}

}  // namespace fist::sim
