#include "sim/services.hpp"

#include <algorithm>

#include "script/standard.hpp"
#include "sim/flows.hpp"
#include "sim/hoard.hpp"

namespace fist::sim {

namespace {

Amount clamp_to(Amount want, Amount have) noexcept {
  return std::min(want, have);
}

}  // namespace

// ---------------------------------------------------------------- pools

void MiningPool::on_day(World& world) {
  Rng& rng = wallet().rng();
  Amount spendable = wallet().balance(world.height(), world.maturity());
  bool payout_due = spendable > btc(100) || !extra_members_.empty();
  if (!payout_due) return;
  if (extra_members_.empty() && !rng.chance(0.7)) return;

  // Decide recipients: pool members (random users), any one-shot
  // members (e.g. the probe), and — early in the simulation — service
  // treasuries, which is how exchanges/games acquired their floats.
  std::vector<std::pair<Address, Amount>> outs;
  Amount budget = spendable - wallet().policy().fee * 4;
  if (budget <= 0) return;
  Amount distributed = 0;

  for (ActorId member : extra_members_) {
    Amount share = clamp_to(btc(1), budget / 4);
    if (share <= 0) break;
    outs.emplace_back(world.actor(member).wallet().receive_address(), share);
    distributed += share;
  }
  extra_members_.clear();

  // Early on, most mined coins flow into service treasuries — the
  // simulator's stand-in for the 2009-2011 era in which today's big
  // services accumulated their floats. Services are funded round-robin
  // so even low-popularity ones (future theft victims) hold real money.
  bool bootstrap = world.day() < world.config().days / 3;
  if (bootstrap) {
    static constexpr Category kFloatCats[] = {
        Category::BankExchange, Category::FixedExchange, Category::Gambling,
        Category::Mix, Category::Wallet, Category::Investment};
    for (int slot = 0; slot < 6; ++slot) {
      Category c = kFloatCats[(bootstrap_rotation_ / 3) %
                              std::size(kFloatCats)];
      const auto& ids = world.of_category(c);
      if (ids.empty()) {
        ++bootstrap_rotation_;
        continue;
      }
      Amount share = (budget - distributed) / 7;
      if (share <= wallet().policy().dust) break;
      ActorId svc = ids[bootstrap_rotation_ % ids.size()];
      ++bootstrap_rotation_;
      outs.emplace_back(world.actor(svc).wallet().receive_address(), share);
      distributed += share;
    }
  }

  std::size_t members = 4 + rng.below(12);
  for (std::size_t i = 0; i < members; ++i) {
    Amount share = (budget - distributed) / static_cast<Amount>(
                       (members - i) + 1);
    if (share <= wallet().policy().dust) break;
    ActorId user = world.random_user(rng);
    outs.emplace_back(world.actor(user).wallet().receive_address(), share);
    distributed += share;
  }
  if (outs.empty()) return;

  if (id() % 3 == 0) {
    // Peeling-chain payout (several large pools paid this way, §5).
    std::optional<WalletCoin> coin =
        largest_coin(wallet(), world.height(), world.maturity());
    if (!coin) return;
    std::optional<BuiltPayment> hop;
    OutPoint tip = coin->outpoint;
    for (const auto& [addr, value] : outs) {
      hop = peel_hop(world, *this, tip, addr, value);
      if (!hop || !hop->change_address) break;
      tip = OutPoint{hop->txid,
                     static_cast<std::uint32_t>(hop->tx.outputs.size() - 1)};
    }
  } else {
    // Fan-out payout: one transaction, many outputs.
    PaymentSpec spec;
    spec.outputs = std::move(outs);
    std::optional<BuiltPayment> built =
        wallet().pay(spec, world.height(), world.maturity());
    if (built) world.submit(id(), *built, wallet().policy().fee);
  }
}

// ---------------------------------------------------- custodial services

Address CustodialService::request_deposit_address(World& world,
                                                  ActorId customer) {
  (void)world;
  // Mt.Gox-style services bound one long-lived deposit address to each
  // account; Instawallet-style services minted a fresh address per
  // deposit (the pattern Heuristic 2's false positives latch onto).
  if (stable_deposits_) {
    auto it = customer_deposit_.find(customer);
    if (it != customer_deposit_.end()) return it->second;
  }
  Address a = wallet().fresh_address();
  deposit_owner_.emplace(a, customer);
  if (stable_deposits_ && customer != kNoActor)
    customer_deposit_.emplace(customer, a);
  return a;
}

bool CustodialService::request_withdrawal(World& world, ActorId customer,
                                          Amount value, const Address& to) {
  (void)world;
  auto it = accounts_.find(customer);
  if (it == accounts_.end() || it->second < value) return false;
  it->second -= value;
  withdrawals_.push_back(PendingWithdrawal{customer, value, to});
  return true;
}

bool CustodialService::sell_coins(World& world, const Address& to,
                                  Amount value) {
  // Keep a float reserve: a real exchange runs an order book and will
  // not sell below its inventory; this also keeps treasuries at the
  // scale thieves target.
  Amount have = wallet().balance(world.height(), world.maturity());
  if (have < value + btc(300)) return false;
  withdrawals_.push_back(PendingWithdrawal{kNoActor, value, to});
  return true;
}

Amount CustodialService::account_balance(ActorId customer) const noexcept {
  auto it = accounts_.find(customer);
  return it == accounts_.end() ? 0 : it->second;
}

void CustodialService::process_withdrawals(World& world) {
  // Withdrawals are served sequentially off the hot wallet's largest
  // coin — which is exactly how withdrawal peeling chains form (§5).
  std::size_t served = 0;
  while (!withdrawals_.empty() && served < 40) {
    PendingWithdrawal w = withdrawals_.front();
    Amount need = w.value + wallet().policy().fee;
    std::optional<WalletCoin> coin =
        largest_coin(wallet(), world.height(), world.maturity());
    std::optional<BuiltPayment> built;
    if (coin && coin->value >= need) {
      built = peel_hop(world, *this, coin->outpoint, w.to, w.value);
    } else {
      PaymentSpec spec;
      spec.outputs.emplace_back(w.to, w.value);
      spec.force_fresh_change = true;
      built = wallet().pay(spec, world.height(), world.maturity());
      if (built) world.submit(id(), *built, wallet().policy().fee);
    }
    if (!built) break;  // hot wallet short; retry tomorrow
    withdrawals_.pop_front();
    ++served;
  }
}

void CustodialService::on_day(World& world) {
  process_withdrawals(world);

  Rng& rng = wallet().rng();
  ++sweep_phase_;
  // Aggregation sweep every few days: deposit addresses are spent
  // together, which is what powers Heuristic 1 for services.
  if (sweep_phase_ % 3 == 0 && wallet().coin_count() > 12) {
    aggregate(world, *this, 6, 80);
  }
  // Cold-storage moves: large, never-spending chunks.
  Amount hot = wallet().balance(world.height(), world.maturity());
  if (hot > btc(2000) && rng.chance(0.3)) {
    PaymentSpec spec;
    spec.outputs.emplace_back(cold_.fresh_address(), hot / 3);
    spec.force_fresh_change = true;
    std::optional<BuiltPayment> built =
        wallet().pay(spec, world.height(), world.maturity());
    if (built) world.submit(id(), *built, wallet().policy().fee);
  }
}

void CustodialService::on_deposit(World& world, const Address& to,
                                  Amount value, const Hash256& txid,
                                  ActorId from) {
  (void)world;
  (void)txid;
  (void)from;
  auto it = deposit_owner_.find(to);
  if (it != deposit_owner_.end()) accounts_[it->second] += value;
  // Non-deposit receipts (bootstrap payouts, peels) join the float.
}

// -------------------------------------------------------- fixed exchange

Address FixedExchange::request_conversion(World& world,
                                          const Address& return_to) {
  (void)world;
  Address a = wallet().fresh_address();
  return_address_.emplace(a, return_to);
  return a;
}

void FixedExchange::on_deposit(World& world, const Address& to, Amount value,
                               const Hash256& txid, ActorId from) {
  (void)world;
  (void)txid;
  (void)from;
  auto it = return_address_.find(to);
  if (it == return_address_.end()) return;  // treasury receipt
  Amount out = value - value / 50;          // 2% spread
  if (out > wallet().policy().dust)
    jobs_.emplace_back(it->second, out);
  return_address_.erase(it);
}

void FixedExchange::on_day(World& world) {
  std::size_t served = 0;
  while (!jobs_.empty() && served < 20) {
    auto [to, value] = jobs_.front();
    PaymentSpec spec;
    spec.outputs.emplace_back(to, value);
    std::optional<BuiltPayment> built =
        wallet().pay(spec, world.height(), world.maturity());
    if (!built) break;
    world.submit(id(), *built, wallet().policy().fee);
    jobs_.pop_front();
    ++served;
  }
}

// -------------------------------------------------------------- gateway

Address PaymentGateway::invoice(World& world, ActorId merchant) {
  (void)world;
  Address a = wallet().fresh_address();
  invoice_merchant_.emplace(a, merchant);
  return a;
}

void PaymentGateway::on_deposit(World& world, const Address& to, Amount value,
                                const Hash256& txid, ActorId from) {
  (void)world;
  (void)txid;
  (void)from;
  auto it = invoice_merchant_.find(to);
  if (it == invoice_merchant_.end()) return;
  merchant_due_[it->second] += value - value / 100;  // 1% gateway fee
}

void PaymentGateway::on_day(World& world) {
  // Daily merchant settlement, in merchant-id order: settlement
  // payments consume wallet coins and mint txids sequentially, so the
  // visit order is chain-visible and must not be a bucket accident.
  std::vector<ActorId> merchants;
  merchants.reserve(merchant_due_.size());
  // fistlint:allow(unordered-iter) key snapshot, sorted on the next line
  for (const auto& [merchant, due] : merchant_due_)
    merchants.push_back(merchant);
  std::sort(merchants.begin(), merchants.end());
  for (ActorId merchant : merchants) {
    Amount& due = merchant_due_[merchant];
    if (due < btc(1)) continue;
    PaymentSpec spec;
    spec.outputs.emplace_back(
        world.actor(merchant).wallet().receive_address(), due);
    std::optional<BuiltPayment> built =
        wallet().pay(spec, world.height(), world.maturity());
    if (!built) continue;
    world.submit(id(), *built, wallet().policy().fee);
    due = 0;
  }
  if (wallet().coin_count() > 15) aggregate(world, *this, 8, 60);
}

// --------------------------------------------------------------- vendor

std::pair<Address, ActorId> VendorService::request_invoice(World& world,
                                                           ActorId customer) {
  (void)customer;
  if (gateway_ != kNoActor) {
    auto& gw = dynamic_cast<PaymentGateway&>(world.actor(gateway_));
    return {gw.invoice(world, id()), gateway_};
  }
  return {wallet().fresh_address(), id()};
}

void VendorService::on_day(World& world) {
  Rng& rng = wallet().rng();
  if (wallet().coin_count() > 10 && rng.chance(0.3))
    aggregate(world, *this, 5, 40);
  // Cash revenue out through an exchange every so often.
  if (rng.chance(0.15)) {
    Amount have = wallet().balance(world.height(), world.maturity());
    if (have > btc(20)) {
      ActorId ex = world.pick_service(Category::BankExchange, rng);
      auto& exchange = dynamic_cast<CustodialService&>(world.actor(ex));
      Address dep = exchange.request_deposit_address(world, id());
      PaymentSpec spec;
      spec.outputs.emplace_back(dep, have / 2);
      std::optional<BuiltPayment> built =
          wallet().pay(spec, world.height(), world.maturity());
      if (built) world.submit(id(), *built, wallet().policy().fee);
    }
  }
}

// ------------------------------------------------------------ dice game

Address DiceGame::bet_address(World& world) {
  (void)world;
  if (bet_addresses_.size() < 4) {
    bet_addresses_.push_back(wallet().fresh_address());
    return bet_addresses_.back();
  }
  Rng& rng = wallet().rng();
  return bet_addresses_[static_cast<std::size_t>(
      rng.below(bet_addresses_.size()))];
}

void DiceGame::on_deposit(World& world, const Address& to, Amount value,
                          const Hash256& txid, ActorId from) {
  (void)from;
  bool is_bet = std::find(bet_addresses_.begin(), bet_addresses_.end(), to) !=
                bet_addresses_.end();
  if (!is_bet) return;  // bankroll top-up

  // Satoshi-Dice semantics: the payout goes back to the address the bet
  // was sent *from* — read off the bet transaction like the real
  // service did.
  const Transaction* bet_tx = world.find_recent_tx(txid);
  if (bet_tx == nullptr || bet_tx->inputs.empty()) return;
  std::optional<Address> bettor =
      spender_address(bet_tx->inputs[0].script_sig);
  if (!bettor) return;

  Rng& rng = wallet().rng();
  Amount payout = rng.chance(p_win_)
                      // fistlint:allow(float-amount) seeded-sim payout
                      // scaling; rounding is deterministic
                      ? static_cast<Amount>(static_cast<double>(value) *
                                            multiplier_)
                      : std::max<Amount>(value / 100,
                                         wallet().policy().dust + 1);
  Amount have = wallet().balance(world.height(), world.maturity());
  if (have < payout + wallet().policy().fee) return;  // bankroll dry

  PaymentSpec spec;
  spec.outputs.emplace_back(*bettor, payout);
  std::optional<BuiltPayment> built =
      wallet().pay(spec, world.height(), world.maturity());
  if (built) world.submit(id(), *built, wallet().policy().fee);
}

// ---------------------------------------------------------------- mixer

Address MixerService::request_mix(World& world, const Address& return_to) {
  (void)world;
  Address a = wallet().fresh_address();
  return_address_.emplace(a, return_to);
  return a;
}

void MixerService::on_deposit(World& world, const Address& to, Amount value,
                              const Hash256& txid, ActorId from) {
  (void)from;
  auto it = return_address_.find(to);
  if (it == return_address_.end()) return;  // float top-up
  if (kind_ == MixerKind::Thieving) {
    // BitMix "simply stole our money": no job is ever queued.
    return_address_.erase(it);
    return;
  }
  Job job;
  job.return_to = it->second;
  job.value = value - value / 33;  // ~3% fee
  job.due_day = world.day() + 1 +
                static_cast<int>(wallet().rng().below(3));
  if (kind_ == MixerKind::Echo) {
    // Find the exact coin we were paid so we can send it straight back.
    const Transaction* tx = world.find_recent_tx(txid);
    if (tx != nullptr) {
      for (std::uint32_t i = 0; i < tx->outputs.size(); ++i) {
        auto addr = extract_address(tx->outputs[i].script_pubkey);
        if (addr && *addr == to) {
          job.received = OutPoint{txid, i};
          break;
        }
      }
    }
  }
  jobs_.push_back(std::move(job));
  return_address_.erase(it);
}

void MixerService::on_day(World& world) {
  std::size_t n = jobs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    if (job.due_day > world.day()) {
      jobs_.push_back(std::move(job));
      continue;
    }
    std::optional<BuiltPayment> built;
    if (kind_ == MixerKind::Echo && !job.received.txid.is_null()) {
      // "Twice sent us our own coins back."
      built = peel_hop(world, *this, job.received, job.return_to,
                       job.value - wallet().policy().fee);
      if (built) continue;
    }
    PaymentSpec spec;
    spec.outputs.emplace_back(job.return_to, job.value);
    built = wallet().pay(spec, world.height(), world.maturity());
    if (built) {
      world.submit(id(), *built, wallet().policy().fee);
    } else {
      jobs_.push_back(std::move(job));  // retry tomorrow
    }
  }
}

// ----------------------------------------------------------- investment

Address InvestmentScheme::request_deposit_address(World& world,
                                                  ActorId customer) {
  (void)world;
  Address a = wallet().fresh_address();
  deposit_owner_.emplace(a, customer);
  return a;
}

void InvestmentScheme::on_deposit(World& world, const Address& to,
                                  Amount value, const Hash256& txid,
                                  ActorId from) {
  (void)world;
  (void)txid;
  (void)from;
  auto it = deposit_owner_.find(to);
  if (it != deposit_owner_.end()) accounts_[it->second] += value;
}

void InvestmentScheme::on_day(World& world) {
  if (absconded_) return;
  Rng& rng = wallet().rng();

  if (world.day() >= abscond_day_) {
    // The Ponzi ends: funnel everything through peeling chains into
    // exchange deposit accounts (where the operator cashes out).
    absconded_ = true;
    std::optional<WalletCoin> coin =
        largest_coin(wallet(), world.height(), world.maturity());
    if (!coin) return;
    OutPoint tip = coin->outpoint;
    for (int hop = 0; hop < 20; ++hop) {
      ActorId ex = world.pick_service(Category::BankExchange, rng);
      auto& exchange = dynamic_cast<CustodialService&>(world.actor(ex));
      Address dep = exchange.request_deposit_address(world, id());
      std::optional<WalletCoin> cur = largest_coin(
          wallet(), world.height(), world.maturity());
      if (!cur) break;
      Amount peel = cur->value / 6;
      if (peel <= wallet().policy().dust) break;
      std::optional<BuiltPayment> built =
          peel_hop(world, *this, cur->outpoint, dep, peel);
      if (!built) break;
      (void)tip;
    }
    return;
  }

  // Weekly "interest": paid from the common pool — the Ponzi mechanic.
  // Investor-id order matters twice over: payouts mint txids, and the
  // pool can run dry mid-loop (`break`), so who gets paid at all must
  // not depend on hash-bucket order.
  if (world.day() % 7 == 0) {
    std::vector<ActorId> investors;
    investors.reserve(accounts_.size());
    // fistlint:allow(unordered-iter) key snapshot, sorted on the next line
    for (const auto& [investor, balance] : accounts_)
      investors.push_back(investor);
    std::sort(investors.begin(), investors.end());
    for (ActorId investor : investors) {
      Amount balance = accounts_[investor];
      if (balance <= 0) continue;
      Amount interest = balance * 7 / 100;
      if (interest <= wallet().policy().dust) continue;
      Amount have = wallet().balance(world.height(), world.maturity());
      if (have < interest + wallet().policy().fee) break;
      PaymentSpec spec;
      spec.outputs.emplace_back(
          world.actor(investor).wallet().receive_address(), interest);
      std::optional<BuiltPayment> built =
          wallet().pay(spec, world.height(), world.maturity());
      if (built) world.submit(id(), *built, wallet().policy().fee);
    }
  }
}

// ----------------------------------------------------------------- user

void UserActor::on_day(World& world) {
  Rng& rng = wallet().rng();
  // Poisson-ish activity: up to two actions per day.
  if (!rng.chance(activity_)) return;
  act_once(world);
  if (rng.chance(activity_ / 3)) act_once(world);
}

void UserActor::acquire_coins(World& world) {
  Rng& rng = wallet().rng();
  if (world.of_category(Category::BankExchange).empty()) return;
  ActorId ex = world.pick_service(Category::BankExchange, rng);
  auto& exchange = dynamic_cast<CustodialService&>(world.actor(ex));
  Amount amount = btc_fraction(2.0 + rng.unit() * 30.0);
  exchange.sell_coins(world, wallet().receive_address(), amount);
}

void UserActor::act_once(World& world) {
  Rng& rng = wallet().rng();
  Amount spendable = wallet().balance(world.height(), world.maturity());
  if (spendable < btc(1)) {
    acquire_coins(world);
    return;
  }

  const double p_gamble = world.config().p_gamble;
  double roll = rng.unit();
  Amount fee = wallet().policy().fee;

  auto pay_to = [&](const Address& to, Amount value) {
    PaymentSpec spec;
    spec.outputs.emplace_back(to, value);
    std::optional<BuiltPayment> built =
        wallet().pay(spec, world.height(), world.maturity());
    if (built) world.submit(id(), *built, fee);
  };

  if (roll < p_gamble) {
    // Gamble. Dice games dominate (as Satoshi Dice did).
    ActorId g = world.pick_service(Category::Gambling, rng);
    Actor& game = world.actor(g);
    Amount bet = clamp_to(btc_fraction(0.1 + rng.unit() * 2.0),
                          spendable / 4);
    if (bet <= fee) return;
    if (auto* dice = dynamic_cast<DiceGame*>(&game)) {
      pay_to(dice->bet_address(world), bet);
    } else if (auto* poker = dynamic_cast<CustodialService*>(&game)) {
      // Poker sites are custodial: deposit, sometimes cash out.
      if (known_balances_[g] > btc(1) && rng.chance(0.4)) {
        Amount out = known_balances_[g] / 2;
        if (poker->request_withdrawal(world, id(), out,
                                      wallet().receive_address()))
          known_balances_[g] -= out;
      } else {
        pay_to(poker->request_deposit_address(world, id()), bet);
        known_balances_[g] += bet;
      }
    }
    return;
  }
  roll -= p_gamble;

  if (roll < 0.20) {
    // Buy something.
    ActorId v = world.pick_service(Category::Vendor, rng);
    Actor& shop = world.actor(v);
    Amount price = clamp_to(btc_fraction(0.2 + rng.unit() * 5.0),
                            spendable / 3);
    if (price <= fee) return;
    if (auto* market = dynamic_cast<SilkRoadMarket*>(&shop)) {
      // Marketplace purchases ran larger than ordinary web orders.
      price = clamp_to(btc_fraction(0.5 + rng.unit() * 8.0), spendable / 2);
      if (price <= fee) return;
      pay_to(market->escrow_address(world), price);
    } else if (auto* vendor = dynamic_cast<VendorService*>(&shop)) {
      auto [addr, owner] = vendor->request_invoice(world, id());
      (void)owner;
      pay_to(addr, price);
    }
    // (The gateway itself can be drawn here; customers don't buy from
    // it directly, so that draw is a no-op.)
    return;
  }
  roll -= 0.20;

  if (roll < 0.15) {
    // Exchange cycle: deposit, or withdraw a prior balance.
    ActorId ex = world.pick_service(Category::BankExchange, rng);
    auto& exchange = dynamic_cast<CustodialService&>(world.actor(ex));
    if (known_balances_[ex] > btc(2) && rng.chance(0.5)) {
      Amount out = known_balances_[ex] * 2 / 3;
      if (exchange.request_withdrawal(world, id(), out,
                                      wallet().receive_address()))
        known_balances_[ex] -= out;
    } else {
      Amount dep = clamp_to(btc_fraction(1.0 + rng.unit() * 20.0),
                            spendable / 2);
      if (dep <= fee) return;
      pay_to(exchange.request_deposit_address(world, id()), dep);
      known_balances_[ex] += dep;
    }
    return;
  }
  roll -= 0.15;

  if (roll < 0.10) {
    // Hosted-wallet cycle.
    if (world.of_category(Category::Wallet).empty()) return;
    ActorId w = world.pick_service(Category::Wallet, rng);
    auto& svc = dynamic_cast<CustodialService&>(world.actor(w));
    if (known_balances_[w] > btc(1) && rng.chance(0.5)) {
      Amount out = known_balances_[w];
      if (svc.request_withdrawal(world, id(), out,
                                 wallet().receive_address()))
        known_balances_[w] -= out;
    } else {
      Amount dep = clamp_to(btc_fraction(0.5 + rng.unit() * 8.0),
                            spendable / 2);
      if (dep <= fee) return;
      pay_to(svc.request_deposit_address(world, id()), dep);
      known_balances_[w] += dep;
    }
    return;
  }
  roll -= 0.10;

  if (roll < 0.12) {
    // Peer-to-peer payment.
    ActorId peer = world.random_user(rng);
    if (peer == id()) return;
    Amount value = clamp_to(btc_fraction(0.05 + rng.unit() * 4.0),
                            spendable / 3);
    if (value <= fee) return;
    pay_to(world.actor(peer).wallet().receive_address(), value);
    return;
  }
  roll -= 0.12;

  if (roll < world.config().p_mix) {
    // Mix some coins.
    if (world.of_category(Category::Mix).empty()) return;
    ActorId m = world.pick_service(Category::Mix, rng);
    auto& mixer = dynamic_cast<MixerService&>(world.actor(m));
    Amount value = clamp_to(btc_fraction(1.0 + rng.unit() * 8.0),
                            spendable / 3);
    if (value <= fee) return;
    pay_to(mixer.request_mix(world, wallet().fresh_address()), value);
    return;
  }
  roll -= world.config().p_mix;

  if (roll < 0.03) {
    // Invest in the scheme, while it lasts.
    if (world.of_category(Category::Investment).empty()) return;
    ActorId s = world.pick_service(Category::Investment, rng);
    if (auto* scheme = dynamic_cast<InvestmentScheme*>(&world.actor(s))) {
      if (scheme->absconded()) return;
      Amount value = clamp_to(btc_fraction(2.0 + rng.unit() * 15.0),
                              spendable / 2);
      if (value <= fee) return;
      pay_to(scheme->request_deposit_address(world, id()), value);
    }
    return;
  }

  // Otherwise: hold.
}

}  // namespace fist::sim
