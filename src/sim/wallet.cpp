#include "sim/wallet.hpp"

#include <algorithm>

#include "chain/sighash.hpp"
#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist::sim {

std::uint32_t Wallet::mint_key() {
  MintedKey k = factory_.mint();
  std::uint32_t index = static_cast<std::uint32_t>(keys_.size());
  key_of_.emplace(k.address, index);
  keys_.push_back(std::move(k));
  return index;
}

Address Wallet::receive_address() {
  if (!past_receive_.empty() && rng_.chance(policy_.p_reuse_receive)) {
    return past_receive_[static_cast<std::size_t>(
        rng_.below(past_receive_.size()))];
  }
  Address a = keys_[mint_key()].address;
  past_receive_.push_back(a);
  if (past_receive_.size() > 64) past_receive_.pop_front();
  return a;
}

Address Wallet::fresh_address() { return keys_[mint_key()].address; }

Address Wallet::donation_address() {
  if (!donation_) donation_ = keys_[mint_key()].address;
  return *donation_;
}

void Wallet::credit(const OutPoint& outpoint, Amount value, const Address& to,
                    int height, bool coinbase) {
  auto it = key_of_.find(to);
  if (it == key_of_.end())
    throw UsageError("Wallet::credit: address not owned");
  coins_.push_back(WalletCoin{outpoint, value, it->second, height, coinbase});
}

Amount Wallet::balance(int height, int maturity) const noexcept {
  Amount total = 0;
  for (const WalletCoin& c : coins_) {
    if (c.coinbase && height - c.height < maturity) continue;
    total += c.value;
  }
  return total;
}

Amount Wallet::total_balance() const noexcept {
  Amount total = 0;
  for (const WalletCoin& c : coins_) total += c.value;
  return total;
}

Script Wallet::script_sig_for(const Transaction& tx, std::size_t input,
                              std::uint32_t key) {
  const MintedKey& mk = keys_[key];
  if (mk.privkey) {
    return sign_p2pkh_input(tx, input, make_p2pkh(mk.address.payload()),
                            *mk.privkey, /*compressed=*/true);
  }
  // Fast mode: structurally correct scriptSig with a placeholder DER
  // signature. Classification and clustering never look inside it.
  Bytes fake_sig(71);
  fake_sig[0] = 0x30;
  fake_sig[1] = 68;
  for (std::size_t i = 2; i < fake_sig.size() - 1; i += 8) {
    std::uint64_t v = rng_.next();
    for (std::size_t b = 0; b < 8 && i + b < fake_sig.size() - 1; ++b)
      fake_sig[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  fake_sig.back() = 0x01;  // SIGHASH_ALL
  return make_p2pkh_scriptsig(fake_sig, mk.pubkey);
}

BuiltPayment Wallet::finalize(Transaction tx,
                              const std::vector<WalletCoin>& spent,
                              std::optional<Address> change,
                              Amount change_value, int height) {
  // Sign each input (scriptSigs must be final before txid).
  for (std::size_t i = 0; i < spent.size(); ++i)
    tx.inputs[i].script_sig = script_sig_for(tx, i, spent[i].key);

  BuiltPayment built;
  built.txid = tx.txid();
  built.change_address = change;
  built.change_value = change_value;

  // Debit the spent coins.
  for (const WalletCoin& c : spent) {
    std::erase_if(coins_, [&](const WalletCoin& w) {
      return w.outpoint == c.outpoint;
    });
  }
  // Credit the change output (always the last output when present).
  if (change) {
    std::uint32_t change_slot =
        static_cast<std::uint32_t>(tx.outputs.size() - 1);
    credit(OutPoint{built.txid, change_slot}, change_value, *change, height,
           false);
  }
  built.tx = std::move(tx);
  return built;
}

std::optional<BuiltPayment> Wallet::pay(const PaymentSpec& spec, int height,
                                        int maturity) {
  Amount target = 0;
  for (const auto& [addr, value] : spec.outputs) {
    if (value <= 0) throw UsageError("Wallet::pay: non-positive output");
    target = add_money(target, value);
  }
  target = add_money(target, policy_.fee);

  // Coin selection.
  std::vector<WalletCoin> selected;
  Amount selected_value = 0;
  if (spec.spend_coin) {
    auto it = std::find_if(coins_.begin(), coins_.end(),
                           [&](const WalletCoin& c) {
                             return c.outpoint == *spec.spend_coin;
                           });
    if (it == coins_.end()) return std::nullopt;
    if (it->coinbase && height - it->height < maturity) return std::nullopt;
    selected.push_back(*it);
    selected_value = it->value;
    if (selected_value < target) return std::nullopt;
  } else {
    // Oldest-first with light randomization: take from the front of the
    // coin list but occasionally skip, so selection isn't perfectly FIFO.
    for (const WalletCoin& c : coins_) {
      if (selected_value >= target) break;
      if (spec.max_inputs != 0 && selected.size() >= spec.max_inputs) break;
      if (c.coinbase && height - c.height < maturity) continue;
      if (rng_.chance(0.1)) continue;  // skip ~10% for variety
      selected.push_back(c);
      selected_value += c.value;
    }
    if (selected_value < target) {
      // Deterministic fallback: no skipping.
      selected.clear();
      selected_value = 0;
      for (const WalletCoin& c : coins_) {
        if (selected_value >= target) break;
        if (spec.max_inputs != 0 && selected.size() >= spec.max_inputs)
          break;
        if (c.coinbase && height - c.height < maturity) continue;
        selected.push_back(c);
        selected_value += c.value;
      }
      if (selected_value < target) return std::nullopt;
    }
  }

  Transaction tx;
  tx.inputs.reserve(selected.size());
  for (const WalletCoin& c : selected) {
    TxIn in;
    in.prevout = c.outpoint;
    tx.inputs.push_back(in);
  }
  for (const auto& [addr, value] : spec.outputs)
    tx.outputs.push_back(TxOut{value, make_script_for(addr)});

  // Change handling.
  Amount change_value = selected_value - target;
  std::optional<Address> change;
  if (change_value > policy_.dust) {
    if (!spec.force_fresh_change && rng_.chance(policy_.p_self_change)) {
      // Self-change: back to the first input's own address.
      change = keys_[selected[0].key].address;
    } else if (!spec.force_fresh_change && !past_change_.empty() &&
               rng_.chance(policy_.p_reuse_change)) {
      // The reuse the paper observed was mostly "the same change
      // address used twice within a short window of time" — bias
      // heavily toward the most recent change address, with a small
      // tail of reuses of older ones.
      change = rng_.chance(0.8)
                   ? past_change_.back()
                   : past_change_[static_cast<std::size_t>(
                         rng_.below(past_change_.size()))];
    } else {
      change = keys_[mint_key()].address;
    }
    tx.outputs.push_back(TxOut{change_value, make_script_for(*change)});
    past_change_.push_back(*change);
    if (past_change_.size() > 16) past_change_.pop_front();
  } else {
    change_value = 0;  // folded into the fee
  }

  // Occasionally randomize output order so change isn't always last...
  // except it must be last for our own change-credit bookkeeping; real
  // clients shuffle, but Heuristic 2 never looks at position, so we
  // keep change last and shuffle only the payment outputs.
  if (tx.outputs.size() > 2 && change) {
    // shuffle all but last
    for (std::size_t i = tx.outputs.size() - 1; i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(rng_.below(i));
      if (i - 1 != j) std::swap(tx.outputs[i - 1], tx.outputs[j]);
    }
  }

  return finalize(std::move(tx), selected, change, change_value, height);
}

std::optional<BuiltPayment> Wallet::sweep(const Address& to,
                                          std::size_t min_coins,
                                          std::size_t max_coins, int height,
                                          int maturity,
                                          std::size_t skip_oldest) {
  std::vector<WalletCoin> selected;
  Amount value = 0;
  std::size_t skipped = 0;
  for (const WalletCoin& c : coins_) {
    if (selected.size() >= max_coins) break;
    if (c.coinbase && height - c.height < maturity) continue;
    if (skipped < skip_oldest) {
      ++skipped;
      continue;
    }
    selected.push_back(c);
    value += c.value;
  }
  if (selected.size() < min_coins) return std::nullopt;
  if (value <= policy_.fee + policy_.dust) return std::nullopt;

  Transaction tx;
  for (const WalletCoin& c : selected) {
    TxIn in;
    in.prevout = c.outpoint;
    tx.inputs.push_back(in);
  }
  tx.outputs.push_back(TxOut{value - policy_.fee, make_script_for(to)});
  return finalize(std::move(tx), selected, std::nullopt, 0, height);
}

}  // namespace fist::sim
