// thief.hpp — scripted theft actors (the paper's Table 3).
//
// Each thief robs a victim service on a scheduled day, then moves the
// loot through a movement program — aggregations (A), peeling chains
// (P), splits (S), folding with clean coins (F) — optionally cashing
// out into exchange deposit addresses. Ground truth is journaled into
// the world's TheftRecord so the forensic tracker can be scored.
#pragma once

#include "sim/actor.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace fist::sim {

/// One thief executing one TheftScenario.
class ThiefActor final : public Actor {
 public:
  ThiefActor(std::string name, Wallet wallet, Wallet dormant_wallet,
             TheftScenario scenario, std::size_t record_index)
      : Actor(std::move(name), Category::User, std::move(wallet)),
        dormant_(std::move(dormant_wallet)),
        scenario_(std::move(scenario)),
        record_index_(record_index) {}

  void on_day(World& world) override;

  std::vector<Wallet*> wallets() override { return {&wallet(), &dormant_}; }

 private:
  TheftRecord& record(World& world);
  void execute_theft(World& world);
  void execute_phase(World& world, char phase);
  void run_peel_phase(World& world);

  Wallet dormant_;
  TheftScenario scenario_;
  std::size_t record_index_;

  bool stolen_ = false;
  bool clean_acquired_ = false;
  bool clean_requested_ = false;
  std::size_t next_phase_ = 0;
  int next_action_day_ = -1;
};

}  // namespace fist::sim
