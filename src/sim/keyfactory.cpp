#include "sim/keyfactory.hpp"

#include "crypto/hash.hpp"

namespace fist::sim {

MintedKey KeyFactory::mint() {
  ++count_;
  MintedKey out;
  if (mode_ == KeyMode::Real) {
    std::uint8_t seed[16];
    for (int i = 0; i < 2; ++i) {
      std::uint64_t v = rng_.next();
      for (int b = 0; b < 8; ++b)
        seed[i * 8 + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    PrivateKey key = PrivateKey::from_seed(ByteView(seed, sizeof(seed)));
    PublicKey pub = key.pubkey();
    out.pubkey = pub.serialize_compressed();
    out.privkey = key;
  } else {
    // Pseudo pubkey: SEC1-compressed shape, uniformly random body. The
    // address pipeline from here on (HASH160, Base58Check) is genuine.
    out.pubkey.resize(33);
    out.pubkey[0] = (rng_.next() & 1) ? 0x03 : 0x02;
    for (std::size_t i = 1; i < 33; i += 8) {
      std::uint64_t v = rng_.next();
      for (std::size_t b = 0; b < 8 && i + b < 33; ++b)
        out.pubkey[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  out.address = Address(AddrType::P2PKH, hash160(out.pubkey));
  return out;
}

}  // namespace fist::sim
