#include "sim/hoard.hpp"

#include <string_view>

#include "sim/flows.hpp"
#include "sim/services.hpp"

namespace fist::sim {

namespace {

// Table-2-flavoured peel recipient mix: (service, weight). Unnamed
// users take the remaining probability mass at the call site.
struct PeelTarget {
  std::string_view service;
  double weight;
};

constexpr PeelTarget kPeelTargets[] = {
    {"Mt. Gox", 30},       {"Instawallet", 14},   {"Bitstamp", 6},
    {"OKPay", 3},          {"CA VirtEx", 5},      {"Bitcoin-24", 4},
    {"Bitcoin Central", 2},{"Bitcoin.de", 1},     {"Bitmarket", 1},
    {"BTC-e", 2},          {"Mercado Bitcoin", 1},{"WalletBit", 1},
    {"Bitzino", 2},        {"Seals with Clubs", 1},{"Coinabul", 1},
    {"Medsforbitcoin", 3}, {"Silk Road", 9},
};

// The dissolution schedule from the paper, in BTC of the original
// 1DkyBEKt balance; we use them as *fractions* of the simulated hoard.
// fistlint:allow-file(float-amount) BTC-denominated historical
// constants and proportional splits; results cross into satoshis only
// via deterministic rounding, and the sim is fully seeded
constexpr double kWithdrawalsBtc[] = {20000, 19000, 60000,
                                      100000, 100000, 150000};
constexpr double kFinalBtc = 158336;
constexpr double kTotalBtc = 607336;  // sum of the above

}  // namespace

Address SilkRoadMarket::escrow_address(World& world) {
  (void)world;
  return wallet().fresh_address();
}

void SilkRoadMarket::on_day(World& world) {
  if (!dissolved_ && world.day() < dissolve_day_) {
    accumulate(world);
    return;
  }
  if (!dissolved_) {
    dissolve(world);
    return;
  }
  run_peel_chains(world);
}

void SilkRoadMarket::accumulate(World& world) {
  // Pay sellers their share of recent escrow (keeps coins circulating;
  // the ~15% margin is what accumulates into the hoard).
  Rng& rng = wallet().rng();
  Amount escrow = wallet().balance(world.height(), world.maturity());
  if (escrow > btc(50) && rng.chance(0.8)) {
    std::vector<std::pair<Address, Amount>> outs;
    int sellers = 2 + static_cast<int>(rng.below(5));
    Amount payout_total = escrow / 4;
    for (int i = 0; i < sellers; ++i) {
      ActorId seller = world.random_user(rng);
      outs.emplace_back(world.actor(seller).wallet().receive_address(),
                        payout_total / sellers);
    }
    PaymentSpec spec;
    spec.outputs = std::move(outs);
    std::optional<BuiltPayment> built =
        wallet().pay(spec, world.height(), world.maturity());
    if (built) world.submit(id(), *built, wallet().policy().fee);
  }

  // Weekly aggregate deposit into the hoard address ("the funds of 128
  // addresses were combined to deposit 10,000 BTC...").
  if (world.day() % 7 != 3) return;
  if (!hoard_address_) hoard_address_ = hoard_.fresh_address();
  Amount before = wallet().balance(world.height(), world.maturity());
  if (before < btc(40)) return;
  std::optional<BuiltPayment> built = wallet().sweep(
      *hoard_address_, 8, 128, world.height(), world.maturity());
  if (!built) return;
  world.submit(id(), *built, wallet().policy().fee);
  Amount deposited = built->tx.outputs[0].value;
  hoard_balance_ += deposited;
  if (HoardRecord* rec = world.mutable_hoard()) {
    rec->hoard_address = *hoard_address_;
    rec->deposit_txids.push_back(built->txid);
    rec->peak_balance = hoard_balance_;
  }
}

void SilkRoadMarket::dissolve(World& world) {
  dissolved_ = true;
  HoardRecord* rec = world.mutable_hoard();
  Amount balance = hoard_.balance(world.height(), world.maturity());
  if (balance <= 0) return;

  // First six withdrawals to separate (untracked) addresses.
  for (double amount_btc : kWithdrawalsBtc) {
    Amount amount = static_cast<Amount>(
        static_cast<double>(balance) * amount_btc / kTotalBtc);
    if (amount <= hoard_.policy().dust) continue;
    PaymentSpec spec;
    spec.outputs.emplace_back(hoard_.fresh_address(), amount);
    spec.force_fresh_change = true;
    std::optional<BuiltPayment> built =
        hoard_.pay(spec, world.height(), world.maturity());
    if (!built) continue;
    world.submit(id(), *built, hoard_.policy().fee);
    if (rec) rec->withdrawal_txids.push_back(built->txid);
  }

  // Final chunk: one address, then split 50k/50k/58,336-style into the
  // three peeling chains.
  Amount final_amount = hoard_.balance(world.height(), world.maturity()) -
                        hoard_.policy().fee * 4;
  if (final_amount <= 0) return;
  Address staging = hoard_.fresh_address();
  std::optional<BuiltPayment> move =
      hoard_.sweep(staging, 1, 4096, world.height(), world.maturity());
  if (!move) return;
  world.submit(id(), *move, hoard_.policy().fee);
  if (rec) rec->withdrawal_txids.push_back(move->txid);

  Amount staged = move->tx.outputs[0].value;
  Amount first = static_cast<Amount>(static_cast<double>(staged) * 50000 /
                                     kFinalBtc);
  PaymentSpec split_spec;
  split_spec.spend_coin = OutPoint{move->txid, 0};
  split_spec.force_fresh_change = true;
  split_spec.outputs.emplace_back(hoard_.fresh_address(), first);
  split_spec.outputs.emplace_back(hoard_.fresh_address(), first);
  // Remainder (the 58,336 analogue) leaves as the change output.
  std::optional<BuiltPayment> split_tx =
      hoard_.pay(split_spec, world.height(), world.maturity());
  if (!split_tx) return;
  world.submit(id(), *split_tx, hoard_.policy().fee);

  if (rec) rec->final_split_txid = split_tx->txid;
  chains_.clear();
  for (std::uint32_t i = 0; i < 3; ++i) {
    Chain chain;
    chain.tip = OutPoint{split_tx->txid, i};
    chain.remaining = split_tx->tx.outputs[i].value;
    chains_.push_back(chain);
    if (rec) rec->chain_starts[i] = chain.tip;
  }
}

void SilkRoadMarket::run_peel_chains(World& world) {
  HoardRecord* rec = world.mutable_hoard();
  Rng& rng = hoard_.rng();

  std::vector<double> weights;
  double total_weight = 0;
  for (const PeelTarget& t : kPeelTargets) {
    weights.push_back(t.weight);
    total_weight += t.weight;
  }

  for (std::size_t ci = 0; ci < chains_.size(); ++ci) {
    Chain& chain = chains_[ci];
    if (chain.exhausted || chain.hops_done >= 115) continue;
    int hops_today = 8 + static_cast<int>(rng.below(8));
    for (int h = 0; h < hops_today && chain.hops_done < 115; ++h) {
      // Peel size: a small slice of what remains.
      Amount peel = static_cast<Amount>(
          static_cast<double>(chain.remaining) *
          (0.002 + rng.unit() * 0.015));
      peel = std::max<Amount>(peel, hoard_.policy().dust * 4);
      if (peel + hoard_.policy().fee * 2 >= chain.remaining) {
        chain.exhausted = true;
        break;
      }

      // Pick the recipient: ~55% unnamed users, else the service mix.
      Address to;
      std::string service;
      if (rng.unit() < 0.55) {
        ActorId user = world.random_user(rng);
        to = world.actor(user).wallet().receive_address();
      } else {
        std::size_t pick = rng.weighted(weights);
        service = std::string(kPeelTargets[pick].service);
        Actor* svc = world.find_actor(service);
        if (svc == nullptr) {
          ActorId user = world.random_user(rng);
          to = world.actor(user).wallet().receive_address();
          service.clear();
        } else if (auto* cust = dynamic_cast<CustodialService*>(svc)) {
          to = cust->request_deposit_address(world, id());
        } else if (auto* dice = dynamic_cast<DiceGame*>(svc)) {
          to = dice->bet_address(world);
        } else if (auto* vendor = dynamic_cast<VendorService*>(svc)) {
          to = vendor->request_invoice(world, id()).first;
        } else if (svc == this) {
          to = escrow_address(world);
        } else {
          to = svc->wallet().receive_address();
        }
      }

      std::optional<BuiltPayment> hop =
          peel_hop(world, *this, hoard_, chain.tip, to, peel);
      if (!hop || !hop->change_address) {
        chain.exhausted = true;
        break;
      }
      chain.tip = OutPoint{
          hop->txid, static_cast<std::uint32_t>(hop->tx.outputs.size() - 1)};
      chain.remaining = hop->change_value;
      if (rec && !service.empty())
        rec->peels.push_back(PeelTruth{static_cast<int>(ci),
                                       chain.hops_done, service, peel,
                                       hop->txid});
      else if (rec)
        rec->peels.push_back(PeelTruth{static_cast<int>(ci),
                                       chain.hops_done, "", peel,
                                       hop->txid});
      ++chain.hops_done;
    }
  }
  (void)total_weight;
}

}  // namespace fist::sim
