#include "sim/world.hpp"

#include <algorithm>

#include "core/obs/metrics.hpp"
#include "script/standard.hpp"
#include "sim/hoard.hpp"
#include "sim/probe.hpp"
#include "sim/services.hpp"
#include "sim/thief.hpp"
#include "util/error.hpp"

namespace fist::sim {

std::optional<Address> spender_address(const Script& script_sig) noexcept {
  auto ops = script_sig.ops_checked();
  if (!ops || ops->size() != 2 || !(*ops)[0].is_push() ||
      !(*ops)[1].is_push())
    return std::nullopt;
  const Bytes& pubkey = (*ops)[1].push;
  if (pubkey.size() != 33 && pubkey.size() != 65) return std::nullopt;
  return Address(AddrType::P2PKH, hash160(pubkey));
}

std::vector<TheftScenario> default_thefts() {
  // Table 3 of the paper. Days are fractions of the run, rescaled by
  // the world; dormancy/dormant figures follow the case studies.
  std::vector<TheftScenario> book;
  book.push_back({"MyBitcoin", "MyBitcoin", 4019, 25, "A/P/S", true, 0.0, 2});
  book.push_back({"Linode", "Bitcoinica", 46648, 35, "A/P/F", true, 0.0, 2});
  book.push_back({"Betcoin", "Betcoin", 3171, 38, "F/A/P", true, 0.0, 40});
  book.push_back(
      {"Bitcoinica (May)", "Bitcoinica", 18547, 45, "P/A", true, 0.0, 2});
  book.push_back(
      {"Bitcoinica (Jul)", "Bitcoinica", 40000, 55, "P/A/S", true, 0.0, 2});
  book.push_back({"Bitfloor", "Bitfloor", 24078, 62, "P/A/P", true, 0.0, 2});
  book.push_back({"Trojan", "", 3257, 68, "F/A", false, 0.877, 5});
  return book;
}

World::World(const WorldConfig& config)
    : config_(config),
      rng_(config.seed),
      chainstate_(ChainParams{config.coinbase_maturity,
                              config.halving_interval,
                              /*check_pow=*/true, /*check_merkle=*/true,
                              config.verify_scripts, kEasyBits}) {
  by_category_.resize(kCategoryCount);
  now_ = config_.start_time != 0 ? config_.start_time
                                 : from_date(2010, 12, 29);
  build_population();
}

World::~World() = default;

Wallet World::make_wallet(double p_self_change, double p_reuse_change,
                          double p_reuse_receive) {
  WalletPolicy policy;
  policy.p_self_change = p_self_change;
  policy.p_reuse_change = p_reuse_change;
  policy.p_reuse_receive = p_reuse_receive;
  return Wallet(KeyFactory(config_.key_mode, rng_.fork()), policy,
                rng_.fork());
}

ActorId World::add_actor(std::unique_ptr<Actor> actor) {
  ActorId id = static_cast<ActorId>(actors_.size());
  actor->set_id(id);
  actor_by_name_.emplace(actor->name(), id);
  by_category_[static_cast<std::size_t>(actor->category())].push_back(id);
  // Only genuine users join the random-recipient pool; thieves and the
  // probe share the User *category* but must not receive stray payouts
  // (it would mix untracked income into their wallets).
  if (dynamic_cast<UserActor*>(actor.get()) != nullptr)
    users_.push_back(id);
  actors_.push_back(std::move(actor));
  keys_registered_.emplace_back();
  return id;
}

void World::build_population() {
  // ---- mining pools (popularity = creation order) --------------------
  static constexpr const char* kPools[] = {
      "Deepbit",   "Slush",  "BTC Guild", "Eligius", "Bitminter",
      "50 BTC",    "Ozcoin", "EclipseMC", "ABC Pool", "Itzod"};
  int pools = std::min<int>(config_.pools, std::size(kPools));
  for (int i = 0; i < pools; ++i) {
    // Pools reuse payout addresses heavily.
    Wallet w = make_wallet(0.3, 0.0, 0.7);
    double hashpower = 1.0 / (i + 1.0);  // zipf-ish
    ActorId id = add_actor(
        std::make_unique<MiningPool>(kPools[i], std::move(w), hashpower));
    pool_ids_.push_back(id);
    pool_hashpower_.push_back(hashpower);
  }

  // ---- custodial services --------------------------------------------
  auto add_custodial = [&](const char* name, Category cat,
                           bool stable_deposits = true) {
    Wallet hot = make_wallet(0.05, 0.0, 0.0);
    Wallet cold = make_wallet(0.0, 0.0, 0.0);
    add_actor(std::make_unique<CustodialService>(
        name, cat, std::move(hot), std::move(cold), stable_deposits));
  };
  static constexpr const char* kBankExchanges[] = {
      "Mt. Gox",    "Bitstamp",      "BTC-e",     "Bitcoin-24",
      "Bitcoin Central", "CA VirtEx", "Bitcoin.de", "Bitmarket",
      "Mercado Bitcoin", "Bitfloor",  "Bitcoinica", "Betcoin",
      "CampBX",     "Vircurex"};
  int banks = std::min<int>(config_.bank_exchanges + 4,
                            std::size(kBankExchanges));
  for (int i = 0; i < banks; ++i)
    add_custodial(kBankExchanges[i], Category::BankExchange);

  static constexpr const char* kWallets[] = {
      "Instawallet", "My Wallet", "Coinbase",  "WalletBit",
      "Easywallet",  "Flexcoin",  "Strongcoin", "Paytunia", "MyBitcoin"};
  int wallets = std::min<int>(config_.wallet_services + 1,
                              std::size(kWallets));
  // Hosted wallets mint a fresh deposit address per deposit
  // (Instawallet-style) — the one-time pattern §4.2 wrestles with.
  for (int i = 0; i < wallets; ++i)
    add_custodial(kWallets[i], Category::Wallet, /*stable_deposits=*/false);

  // ---- fixed-rate exchanges ------------------------------------------
  static constexpr const char* kFixed[] = {
      "OKPay",        "BitInstant",   "FastCash4Bitcoins",
      "Bitcoin Nordic", "BTC Quick",  "Aurum Xchange",
      "Nanaimo Gold", "Lilion Transfer"};
  int fixed = std::min<int>(config_.fixed_exchanges, std::size(kFixed));
  for (int i = 0; i < fixed; ++i) {
    Wallet w = make_wallet(0.1, 0.0, 0.0);
    add_actor(std::make_unique<FixedExchange>(kFixed[i], std::move(w)));
  }

  // ---- vendors (Silk Road first: it dominated vendor volume) ----------
  if (config_.enable_hoard) {
    hoard_ = std::make_unique<HoardRecord>();
    int dissolve_day = config_.days * 3 / 4;
    add_actor(std::make_unique<SilkRoadMarket>(
        "Silk Road", make_wallet(0.05, 0.0, 0.0),
        make_wallet(0.0, 0.0, 0.0), dissolve_day));
  }

  ActorId gateway = add_actor(std::make_unique<PaymentGateway>(
      "BitPay", make_wallet(0.05, 0.0, 0.0)));

  static constexpr const char* kVendors[] = {
      "Coinabul",  "Medsforbitcoin", "CoinDL",    "JJ Games",
      "ABU Games", "Bitmit",         "Etsy",      "NZBs R Us",
      "Bitdomain", "BTC Gadgets",    "Casascius", "Bit Usenet", "Yoku"};
  int vendors = std::min<int>(config_.vendors, std::size(kVendors));
  for (int i = 0; i < vendors; ++i) {
    // Roughly half the merchants settle through BitPay.
    ActorId gw = (i % 2 == 0) ? gateway : kNoActor;
    add_actor(std::make_unique<VendorService>(
        kVendors[i], make_wallet(0.1, 0.0, 0.2), gw));
  }

  // ---- gambling ---------------------------------------------------------
  // Satoshi Dice towers over the category, as it did in 2012-13.
  // Dice games keep their bankroll on a small, heavily reused address
  // set (Satoshi Dice's "1dice..." vanity addresses were all public).
  add_actor(std::make_unique<DiceGame>(
      "Satoshi Dice", make_wallet(0.9, 0.6, 1.0), 0.485, 1.957));
  static constexpr const char* kDice[] = {
      "Bitzino", "BTC Griffin", "Bitcoin Kamikaze", "Clone Dice",
      "Bitcoin Darts", "Gold Game Land"};
  int dice_games = std::min<int>(std::max(config_.gambling - 2, 0),
                                 std::size(kDice));
  for (int i = 0; i < dice_games; ++i)
    add_actor(std::make_unique<DiceGame>(
        kDice[i], make_wallet(0.85, 0.5, 0.8), 0.48, 1.9));
  add_custodial("Seals with Clubs", Category::Gambling);  // poker

  // ---- mixers ---------------------------------------------------------
  struct MixSpec {
    const char* name;
    MixerKind kind;
  };
  static constexpr MixSpec kMixers[] = {
      {"Bitcoin Laundry", MixerKind::Echo},
      {"BitMix", MixerKind::Thieving},
      {"Bitlaundry", MixerKind::Honest},
      {"Bitfog", MixerKind::Honest}};
  int mixers = std::min<int>(config_.mixers, std::size(kMixers));
  for (int i = 0; i < mixers; ++i)
    add_actor(std::make_unique<MixerService>(
        kMixers[i].name, make_wallet(0.1, 0.0, 0.0), kMixers[i].kind));

  // ---- investment (BS&T) ----------------------------------------------
  add_actor(std::make_unique<InvestmentScheme>(
      "Bitcoin Savings & Trust", make_wallet(0.1, 0.0, 0.0),
      make_wallet(0.0, 0.0, 0.0), config_.days * 7 / 10));

  // ---- thieves ---------------------------------------------------------
  if (config_.enable_thefts) {
    for (TheftScenario scenario : default_thefts()) {
      scenario.day = scenario.day * config_.days / 100;
      if (scenario.label == "Betcoin")
        scenario.dormancy_days = config_.days * 2 / 5;
      TheftRecord record;
      record.scenario = scenario;
      std::size_t index = thefts_.size();
      thefts_.push_back(std::move(record));
      add_actor(std::make_unique<ThiefActor>(
          "thief:" + scenario.label, make_wallet(0.05, 0.0, 0.0),
          make_wallet(0.0, 0.0, 0.0), scenario, index));
    }
  }

  // ---- the probe -------------------------------------------------------
  if (config_.enable_probe) {
    add_actor(std::make_unique<ProbeActor>(
        "probe", make_wallet(0.1, 0.0, 0.0), config_.days * 11 / 20));
  }

  // ---- users -----------------------------------------------------------
  // Self-change is a *client* idiom, not a per-payment coin flip: a
  // wallet either specifies its own address as change (the ~23% of
  // 2013 transactions the paper measured) or uses fresh one-time
  // change addresses. Mixing the idioms per payment would let fresh
  // change addresses later receive self-change, an error mode the real
  // network did not exhibit at scale.
  for (int i = 0; i < config_.users; ++i) {
    bool self_changer = rng_.chance(config_.p_self_change);
    Wallet w = make_wallet(self_changer ? 0.96 : 0.0,
                           self_changer ? 0.0 : config_.p_reuse_change,
                           config_.p_reuse_receive);
    double activity =
        config_.user_daily_activity * (0.4 + rng_.unit() * 1.2);
    add_actor(std::make_unique<UserActor>("user:" + std::to_string(i),
                                          std::move(w), activity));
  }

  sync_keys();
}

void World::sync_keys() {
  for (std::size_t a = 0; a < actors_.size(); ++a) {
    std::vector<Wallet*> wallets = actors_[a]->wallets();
    std::vector<std::size_t>& reg = keys_registered_[a];
    reg.resize(wallets.size(), 0);
    for (std::size_t w = 0; w < wallets.size(); ++w) {
      const std::vector<MintedKey>& keys = wallets[w]->keys();
      for (std::size_t k = reg[w]; k < keys.size(); ++k)
        truth_.register_address(keys[k].address,
                                static_cast<ActorId>(a));
      reg[w] = keys.size();
    }
  }
}

Actor& World::actor(ActorId id) {
  if (id >= actors_.size()) throw UsageError("World::actor: bad id");
  return *actors_[id];
}

const Actor& World::actor(ActorId id) const {
  if (id >= actors_.size()) throw UsageError("World::actor: bad id");
  return *actors_[id];
}

Actor* World::find_actor(const std::string& name) noexcept {
  auto it = actor_by_name_.find(name);
  return it == actor_by_name_.end() ? nullptr : actors_[it->second].get();
}

const std::vector<ActorId>& World::of_category(Category c) const {
  return by_category_[static_cast<std::size_t>(c)];
}

ActorId World::pick_service(Category c, Rng& rng) {
  const std::vector<ActorId>& ids = of_category(c);
  if (ids.empty()) throw UsageError("pick_service: empty category");
  return ids[rng.zipf(ids.size(), 1.1)];
}

ActorId World::random_user(Rng& rng) {
  if (users_.empty()) throw UsageError("random_user: no users");
  return users_[static_cast<std::size_t>(rng.below(users_.size()))];
}

const Transaction* World::find_recent_tx(
    const Hash256& txid) const noexcept {
  auto it = recent_txs_.find(txid);
  return it == recent_txs_.end() ? nullptr : &it->second;
}

void World::submit(ActorId sender, const BuiltPayment& built, Amount fee) {
  sync_keys();

  mempool_.push_back(PendingTx{built.tx, fee});
  recent_txs_.emplace(built.txid, built.tx);
  ++txs_submitted_;
  static obs::Counter txs_metric =
      obs::MetricsRegistry::global().counter("sim.txs");
  txs_metric.inc();

  const Transaction& tx = built.tx;
  const std::size_t last = tx.outputs.size() - 1;
  for (std::size_t i = 0; i < tx.outputs.size(); ++i) {
    std::optional<Address> addr =
        extract_address(tx.outputs[i].script_pubkey);
    if (!addr) continue;
    ActorId owner = truth_.owner(*addr);
    if (owner == kNoActor) continue;

    bool is_change_slot =
        built.change_address && i == last && *addr == *built.change_address;
    if (owner == sender && is_change_slot)
      continue;  // the wallet credited its own change at build time

    Actor& recipient = actor(owner);
    Wallet* wallet = recipient.wallet_for(*addr);
    if (wallet == nullptr) continue;  // should not happen
    wallet->credit(OutPoint{built.txid, static_cast<std::uint32_t>(i)},
                   tx.outputs[i].value, *addr, height() + 1, false);
    if (owner != sender)
      recipient.on_deposit(*this, *addr, tx.outputs[i].value, built.txid,
                           sender);
  }
}

void World::mine_block() {
  // Winner pool, weighted by hashpower.
  std::size_t winner = rng_.weighted(pool_hashpower_);
  auto& pool = dynamic_cast<MiningPool&>(actor(pool_ids_[winner]));

  int new_height = height() + 1;
  Amount subsidy = block_subsidy(new_height, config_.halving_interval);

  Block block;
  block.header.version = 1;
  block.header.prev_hash =
      new_height == 0 ? Hash256{} : chainstate_.block_hash(height());
  block.header.time = static_cast<std::uint32_t>(now_);
  block.header.bits = kEasyBits;

  // Coinbase.
  Transaction coinbase;
  TxIn in;
  in.prevout = OutPoint::coinbase();
  Script tag;
  Writer w;
  w.u64le(coinbase_counter_++);
  tag.push(w.view());
  in.script_sig = tag;
  coinbase.inputs.push_back(std::move(in));

  // Take waiting transactions, FIFO, up to the block size.
  std::size_t take = std::min(config_.max_block_txs, mempool_.size());
  Amount fees = 0;
  std::vector<Transaction> included;
  included.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    fees = add_money(fees, mempool_[i].fee);
    included.push_back(std::move(mempool_[i].tx));
  }
  mempool_.erase(mempool_.begin(),
                 mempool_.begin() + static_cast<std::ptrdiff_t>(take));

  Address reward_to = pool.wallet().receive_address();
  coinbase.outputs.push_back(
      TxOut{add_money(subsidy, fees), make_script_for(reward_to)});
  Hash256 coinbase_txid = coinbase.txid();

  block.transactions.push_back(std::move(coinbase));
  for (Transaction& tx : included) block.transactions.push_back(std::move(tx));
  block.fix_merkle_root();
  if (nonce_miner_) {
    block.header.nonce = nonce_miner_(block.header);
    if (!check_proof_of_work(block.header.hash(), block.header.bits))
      throw UsageError("World: nonce miner returned an invalid nonce");
  } else {
    while (!check_proof_of_work(block.header.hash(), block.header.bits))
      ++block.header.nonce;
  }

  chainstate_.connect(block);  // throws on any accounting bug
  if (block_sink_)
    block_sink_(block);
  else
    store_.append(block);
  static obs::Counter blocks_metric =
      obs::MetricsRegistry::global().counter("sim.blocks");
  blocks_metric.inc();

  pool.wallet().credit(OutPoint{coinbase_txid, 0}, add_money(subsidy, fees),
                       reward_to, new_height, /*coinbase=*/true);
  sync_keys();
}

void World::run_day() {
  // Actors act...
  for (std::size_t a = 0; a < actors_.size(); ++a) actors_[a]->on_day(*this);
  sync_keys();

  // ...then the day's blocks are mined.
  Timestamp step = kDay / config_.blocks_per_day;
  for (int b = 0; b < config_.blocks_per_day; ++b) {
    now_ += step;
    mine_block();
  }

  // Prune the recent-tx index so it tracks only the last few days.
  if (day_ % 5 == 4) {
    // Entries older than the retention horizon are unreachable for the
    // actors that use this index (mixers look back <= 3 days).
    recent_txs_.clear();
  }
  ++day_;
}

void World::run() {
  for (int d = day_; d < config_.days; ++d) run_day();
  finish();
}

void World::finish() {
  if (finished_) return;
  finished_ = true;
  generate_scraped_tags();
  obs::MetricsRegistry::global().counter("sim.tags").add(tags_.size());
}

void World::generate_scraped_tags() {
  // The blockchain.info/tags analogue (§3.2): a public feed of service
  // addresses, larger but less reliable than our own observations.
  for (const auto& actor_ptr : actors_) {
    const Actor& a = *actor_ptr;
    if (a.category() == Category::User) continue;
    Rng feed_rng = rng_.fork();
    // Gambling addresses were far better covered in public feeds —
    // Satoshi Dice's "1dice..." vanity addresses were all recognizable.
    bool gambling = a.category() == Category::Gambling;
    double fraction =
        gambling ? std::max(0.6, config_.scraped_tag_fraction)
                 : config_.scraped_tag_fraction;
    std::size_t cap =
        gambling ? config_.scraped_tag_cap * 6 : config_.scraped_tag_cap;
    std::size_t emitted = 0;
    for (Wallet* w : const_cast<Actor&>(a).wallets()) {
      for (const MintedKey& key : w->keys()) {
        if (emitted >= cap) break;
        if (!feed_rng.chance(fraction)) continue;
        tags_.push_back(TagEntry{
            key.address,
            Tag{a.name(), a.category(), TagSource::Scraped}});
        ++emitted;
      }
    }
  }
}

}  // namespace fist::sim
