// wallet.hpp — a simulated wallet with period-accurate idioms of use.
//
// The Bitcoin client behaviors the paper's Heuristic 2 exploits (and
// the ones that break it) are all wallet behaviors, so they live here
// as policy knobs:
//   * fresh one-time change addresses (the dominant idiom),
//   * self-change — change returned to an input address (~23% of 2013
//     spends, paper §4.1),
//   * change-address reuse — the false-positive source behind the
//     super-cluster collapse (§4.2),
//   * receive-address reuse (donation-style addresses).
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/transaction.hpp"
#include "sim/keyfactory.hpp"

namespace fist::sim {

/// Behavioral knobs; probabilities are per-payment.
struct WalletPolicy {
  double p_self_change = 0.2;     ///< change to an input address
  double p_reuse_change = 0.0;    ///< reuse a previous change address
  double p_reuse_receive = 0.0;   ///< hand out an old receive address
  Amount fee = 50'000;            ///< flat fee per transaction
  Amount dust = 5'460;            ///< change below this folds into fee
};

/// A spendable output the wallet controls.
struct WalletCoin {
  OutPoint outpoint;
  Amount value = 0;
  std::uint32_t key = 0;   ///< index into the wallet's key list
  int height = 0;          ///< creation height
  bool coinbase = false;   ///< subject to maturity
};

/// Description of a payment to build.
struct PaymentSpec {
  std::vector<std::pair<Address, Amount>> outputs;
  /// Spend exactly this coin (peeling chains); otherwise select coins.
  std::optional<OutPoint> spend_coin;
  /// Cap on inputs when selecting (0 = no cap).
  std::size_t max_inputs = 0;
  /// Force a fresh change address regardless of policy (services whose
  /// withdrawal chains must stay clean).
  bool force_fresh_change = false;
};

/// Result of building a payment.
struct BuiltPayment {
  Transaction tx;
  Hash256 txid;
  std::optional<Address> change_address;
  Amount change_value = 0;
};

/// A simulated wallet.
class Wallet {
 public:
  Wallet(KeyFactory factory, WalletPolicy policy, Rng rng)
      : factory_(std::move(factory)),
        policy_(policy),
        rng_(std::move(rng)) {}

  /// A receive address honoring the reuse policy.
  Address receive_address();

  /// A guaranteed-fresh address (new deposit addresses, invoices).
  Address fresh_address();

  /// A stable public address (minted once, reused forever) — the
  /// donation-address idiom.
  Address donation_address();

  /// Credits an output to this wallet. `coinbase` enables the maturity
  /// rule. Crediting an address the wallet does not own throws.
  void credit(const OutPoint& outpoint, Amount value, const Address& to,
              int height, bool coinbase);

  /// Spendable balance at `height` honoring coinbase maturity.
  Amount balance(int height, int maturity) const noexcept;

  /// Balance ignoring maturity.
  Amount total_balance() const noexcept;

  /// Builds (and signs) a payment; debits inputs and credits change
  /// back to the wallet. Returns nullopt when funds are insufficient.
  /// `height` is the current chain height (for coin maturity and the
  /// change credit).
  std::optional<BuiltPayment> pay(const PaymentSpec& spec, int height,
                                  int maturity);

  /// Builds a many-input sweep of up to `max_coins` coins into `to`
  /// (exchange-style aggregation). Returns nullopt if fewer than
  /// `min_coins` are spendable. `skip_oldest` leaves that many of the
  /// oldest coins untouched (thieves fold newest-in clean coins while
  /// holding back part of the loot).
  std::optional<BuiltPayment> sweep(const Address& to, std::size_t min_coins,
                                    std::size_t max_coins, int height,
                                    int maturity, std::size_t skip_oldest = 0);

  bool owns(const Address& a) const noexcept {
    return key_of_.contains(a);
  }

  /// Every address this wallet ever minted.
  const std::vector<MintedKey>& keys() const noexcept { return keys_; }

  /// Number of currently spendable coins (any maturity).
  std::size_t coin_count() const noexcept { return coins_.size(); }

  /// The wallet's current coins (read-only).
  const std::vector<WalletCoin>& coins() const noexcept { return coins_; }

  const WalletPolicy& policy() const noexcept { return policy_; }
  WalletPolicy& policy() noexcept { return policy_; }

  Rng& rng() noexcept { return rng_; }

 private:
  std::uint32_t mint_key();
  Script script_sig_for(const Transaction& tx, std::size_t input,
                        std::uint32_t key);
  BuiltPayment finalize(Transaction tx,
                        const std::vector<WalletCoin>& spent,
                        std::optional<Address> change, Amount change_value,
                        int height);

  KeyFactory factory_;
  WalletPolicy policy_;
  Rng rng_;

  std::vector<MintedKey> keys_;
  std::unordered_map<Address, std::uint32_t> key_of_;
  std::vector<WalletCoin> coins_;
  std::optional<Address> donation_;
  std::deque<Address> past_change_;   ///< recent change addresses
  std::deque<Address> past_receive_;  ///< recent receive addresses
};

}  // namespace fist::sim
