#include "sim/actor.hpp"

#include <algorithm>

namespace fist::sim {

void GroundTruth::register_address(const Address& a, ActorId actor) {
  owner_.try_emplace(a, actor);
}

ActorId GroundTruth::owner(const Address& a) const noexcept {
  auto it = owner_.find(a);
  return it == owner_.end() ? kNoActor : it->second;
}

std::vector<Address> GroundTruth::addresses_of(ActorId actor) const {
  std::vector<Address> out;
  // fistlint:allow(unordered-iter) collected then fully sorted below
  for (const auto& [addr, owner] : owner_)
    if (owner == actor) out.push_back(addr);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fist::sim
