#include "sim/actor.hpp"

namespace fist::sim {

void GroundTruth::register_address(const Address& a, ActorId actor) {
  owner_.try_emplace(a, actor);
}

ActorId GroundTruth::owner(const Address& a) const noexcept {
  auto it = owner_.find(a);
  return it == owner_.end() ? kNoActor : it->second;
}

std::vector<Address> GroundTruth::addresses_of(ActorId actor) const {
  std::vector<Address> out;
  for (const auto& [addr, owner] : owner_)
    if (owner == actor) out.push_back(addr);
  return out;
}

}  // namespace fist::sim
