// services.hpp — the simulated service ecosystem of the paper's Table 1.
//
// Each class models the on-chain behavior that makes its category
// forensically distinctive:
//   * MiningPool     — coinbase rewards, periodic fan-out payouts
//   * CustodialService — deposit addresses per customer, aggregation
//     sweeps (Heuristic-1 fuel), peeling-chain withdrawals, cold storage
//     (multiple clusters per service, as with the 20 Mt. Gox clusters)
//   * FixedExchange  — one-shot conversions from a float
//   * PaymentGateway / Vendor — BitPay-style invoicing and settlement
//   * DiceGame       — Satoshi-Dice semantics: payouts rebound to the
//     betting address (the paper's key Heuristic-2 false-positive mode)
//   * Mixer          — honest, thieving (BitMix) and echo (Bitcoin
//     Laundry returned our own coins) variants
//   * InvestmentScheme — deposits + interest, then absconds (BS&T)
//   * UserActor      — the ordinary population whose idioms of use the
//     heuristics exploit
#pragma once

#include <deque>
#include <unordered_map>

#include "sim/actor.hpp"
#include "sim/world.hpp"

namespace fist::sim {

/// A pool: mines (via the world's miner), pays members daily.
class MiningPool final : public Actor {
 public:
  MiningPool(std::string name, Wallet wallet, double hashpower)
      : Actor(std::move(name), Category::Mining, std::move(wallet)),
        hashpower_(hashpower) {}

  double hashpower() const noexcept { return hashpower_; }

  /// Adds a one-shot payout member (the probe uses this to trigger a
  /// payout it can observe).
  void add_member(ActorId member) { extra_members_.push_back(member); }

  void on_day(World& world) override;

 private:
  double hashpower_;
  std::vector<ActorId> extra_members_;
  std::size_t bootstrap_rotation_ = 0;
};

/// Account-holding service: bank exchanges, wallet services, poker.
class CustodialService : public Actor {
 public:
  /// `stable_deposits`: Mt.Gox-style one-address-per-account (true) vs
  /// Instawallet-style fresh address per deposit (false). The latter is
  /// what Heuristic 2's false positives latch onto (§4.2).
  CustodialService(std::string name, Category category, Wallet wallet,
                   Wallet cold_wallet, bool stable_deposits = true)
      : Actor(std::move(name), category, std::move(wallet)),
        cold_(std::move(cold_wallet)),
        stable_deposits_(stable_deposits) {}

  /// Issues a fresh deposit address bound to `customer`.
  Address request_deposit_address(World& world, ActorId customer);

  /// Queues a withdrawal to `to` if the account covers it.
  /// Returns false if the balance is insufficient.
  bool request_withdrawal(World& world, ActorId customer, Amount value,
                          const Address& to);

  /// Fiat-side purchase: service sends coins from its float (no
  /// on-chain deposit). Returns false if the float is too small.
  bool sell_coins(World& world, const Address& to, Amount value);

  Amount account_balance(ActorId customer) const noexcept;

  void on_day(World& world) override;
  void on_deposit(World& world, const Address& to, Amount value,
                  const Hash256& txid, ActorId from) override;

  std::vector<Wallet*> wallets() override { return {&wallet(), &cold_}; }

  /// The cold-storage wallet (exposed for the scraped-tag generator).
  const Wallet& cold_wallet() const noexcept { return cold_; }

 protected:
  struct PendingWithdrawal {
    ActorId customer;
    Amount value;
    Address to;
  };

  void process_withdrawals(World& world);

  Wallet cold_;
  bool stable_deposits_;
  std::unordered_map<ActorId, Amount> accounts_;
  std::unordered_map<Address, ActorId> deposit_owner_;
  std::unordered_map<ActorId, Address> customer_deposit_;
  std::deque<PendingWithdrawal> withdrawals_;
  int sweep_phase_ = 0;
};

/// Fixed-rate one-shot exchange: coins in, different coins out.
class FixedExchange final : public Actor {
 public:
  FixedExchange(std::string name, Wallet wallet)
      : Actor(std::move(name), Category::FixedExchange, std::move(wallet)) {}

  /// Registers a conversion: customer will pay the returned deposit
  /// address; the service sends converted coins to `return_to`.
  Address request_conversion(World& world, const Address& return_to);

  void on_deposit(World& world, const Address& to, Amount value,
                  const Hash256& txid, ActorId from) override;
  void on_day(World& world) override;

 private:
  std::unordered_map<Address, Address> return_address_;
  std::deque<std::pair<Address, Amount>> jobs_;
};

/// BitPay-style gateway: owns invoice addresses, settles merchants.
class PaymentGateway final : public Actor {
 public:
  PaymentGateway(std::string name, Wallet wallet)
      : Actor(std::move(name), Category::Vendor, std::move(wallet)) {}

  /// Issues an invoice address for a purchase at `merchant`.
  Address invoice(World& world, ActorId merchant);

  void on_deposit(World& world, const Address& to, Amount value,
                  const Hash256& txid, ActorId from) override;
  void on_day(World& world) override;

 private:
  std::unordered_map<Address, ActorId> invoice_merchant_;
  std::unordered_map<ActorId, Amount> merchant_due_;
};

/// A merchant; may accept directly or through a gateway.
class VendorService final : public Actor {
 public:
  VendorService(std::string name, Wallet wallet, ActorId gateway)
      : Actor(std::move(name), Category::Vendor, std::move(wallet)),
        gateway_(gateway) {}

  /// Returns (address to pay, actor that owns it) — the owner is the
  /// gateway when this merchant uses one, which is exactly what a
  /// customer (or the probe) observes.
  std::pair<Address, ActorId> request_invoice(World& world,
                                              ActorId customer);

  bool uses_gateway() const noexcept { return gateway_ != kNoActor; }

  void on_day(World& world) override;

 private:
  ActorId gateway_;
};

/// Satoshi-Dice-style game: static bet addresses, instant payouts that
/// rebound to the betting address.
class DiceGame final : public Actor {
 public:
  DiceGame(std::string name, Wallet wallet, double win_probability,
           double win_multiplier)
      : Actor(std::move(name), Category::Gambling, std::move(wallet)),
        p_win_(win_probability),
        multiplier_(win_multiplier) {}

  /// One of the game's well-known static bet addresses.
  Address bet_address(World& world);

  void on_deposit(World& world, const Address& to, Amount value,
                  const Hash256& txid, ActorId from) override;

 private:
  double p_win_;
  double multiplier_;
  std::vector<Address> bet_addresses_;
};

/// Mixer behavior variants observed in §3.1.
enum class MixerKind {
  Honest,    ///< pays unrelated coins after a delay
  Thieving,  ///< BitMix: "simply stole our money"
  Echo,      ///< Bitcoin Laundry: "twice sent us our own coins back"
};

/// A mix/laundry service.
class MixerService final : public Actor {
 public:
  MixerService(std::string name, Wallet wallet, MixerKind kind)
      : Actor(std::move(name), Category::Mix, std::move(wallet)),
        kind_(kind) {}

  /// Registers a mix request: pay the returned address; the mixer pays
  /// `return_to` later (behavior depending on kind).
  Address request_mix(World& world, const Address& return_to);

  MixerKind kind() const noexcept { return kind_; }

  void on_deposit(World& world, const Address& to, Amount value,
                  const Hash256& txid, ActorId from) override;
  void on_day(World& world) override;

 private:
  struct Job {
    Address return_to;
    Amount value;
    OutPoint received;  ///< for Echo: pay back these exact coins
    int due_day;
  };

  MixerKind kind_;
  std::unordered_map<Address, Address> return_address_;
  std::deque<Job> jobs_;
};

/// Bitcoin Savings & Trust analogue: deposits, interest, abscond.
class InvestmentScheme final : public Actor {
 public:
  InvestmentScheme(std::string name, Wallet wallet, Wallet cold,
                   int abscond_day)
      : Actor(std::move(name), Category::Investment, std::move(wallet)),
        cold_(std::move(cold)),
        abscond_day_(abscond_day) {}

  Address request_deposit_address(World& world, ActorId customer);

  void on_deposit(World& world, const Address& to, Amount value,
                  const Hash256& txid, ActorId from) override;
  void on_day(World& world) override;

  std::vector<Wallet*> wallets() override { return {&wallet(), &cold_}; }

  bool absconded() const noexcept { return absconded_; }

 private:
  Wallet cold_;
  std::unordered_map<Address, ActorId> deposit_owner_;
  std::unordered_map<ActorId, Amount> accounts_;
  int abscond_day_;
  bool absconded_ = false;
};

/// An ordinary user.
class UserActor final : public Actor {
 public:
  UserActor(std::string name, Wallet wallet, double activity)
      : Actor(std::move(name), Category::User, std::move(wallet)),
        activity_(activity) {}

  void on_day(World& world) override;

 private:
  void acquire_coins(World& world);
  void act_once(World& world);

  double activity_;
  std::unordered_map<ActorId, Amount> known_balances_;  ///< per custodian
};

}  // namespace fist::sim
