// actor.hpp — the economy simulator's actor framework + ground truth.
//
// Every participant — user, mining pool, exchange, dice game, thief —
// is an Actor owning a Wallet. The GroundTruth journal records which
// actor minted every address; the forensic pipeline never reads it
// (it works from serialized blocks + the tag feed), but benches use it
// to score heuristics exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/wallet.hpp"
#include "tag/category.hpp"

namespace fist::sim {

class World;

/// Dense actor identifier.
using ActorId = std::uint32_t;
inline constexpr ActorId kNoActor = 0xffffffffu;

/// Base class for all economy participants.
class Actor {
 public:
  Actor(std::string name, Category category, Wallet wallet)
      : name_(std::move(name)),
        category_(category),
        wallet_(std::move(wallet)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  /// Called once per simulated day, in actor-id order.
  virtual void on_day(World& world) { (void)world; }

  /// Called when a transaction pays an address this actor owns.
  /// `from` is the sending actor (services may not inspect it for
  /// decision-making beyond what an on-chain observer could infer; it
  /// is plumbing for account crediting, which real services do via
  /// their deposit-address books anyway).
  virtual void on_deposit(World& world, const Address& to, Amount value,
                          const Hash256& txid, ActorId from) {
    (void)world;
    (void)to;
    (void)value;
    (void)txid;
    (void)from;
  }

  /// All wallets this actor controls (main first). Actors with side
  /// wallets (cold storage, hoards) override so the world can route
  /// credits and register every minted address.
  virtual std::vector<Wallet*> wallets() { return {&wallet_}; }

  /// The wallet owning `a`, or nullptr.
  Wallet* wallet_for(const Address& a) {
    for (Wallet* w : wallets())
      if (w->owns(a)) return w;
    return nullptr;
  }

  const std::string& name() const noexcept { return name_; }
  Category category() const noexcept { return category_; }
  Wallet& wallet() noexcept { return wallet_; }
  const Wallet& wallet() const noexcept { return wallet_; }

  ActorId id() const noexcept { return id_; }
  void set_id(ActorId id) noexcept { id_ = id; }

 private:
  std::string name_;
  Category category_;
  Wallet wallet_;
  ActorId id_ = kNoActor;
};

/// The simulator's ownership journal.
class GroundTruth {
 public:
  /// Registers an address as owned by `actor`.
  void register_address(const Address& a, ActorId actor);

  /// Owner of an address, or kNoActor.
  ActorId owner(const Address& a) const noexcept;

  /// All registered addresses of one actor.
  std::vector<Address> addresses_of(ActorId actor) const;

  std::size_t size() const noexcept { return owner_.size(); }

  const std::unordered_map<Address, ActorId>& all() const noexcept {
    return owner_;
  }

 private:
  std::unordered_map<Address, ActorId> owner_;
};

}  // namespace fist::sim
