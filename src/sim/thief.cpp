#include "sim/thief.hpp"

#include <algorithm>

#include "sim/flows.hpp"
#include "sim/services.hpp"

namespace fist::sim {

TheftRecord& ThiefActor::record(World& world) {
  return world.mutable_thefts()[record_index_];
}

void ThiefActor::on_day(World& world) {
  if (!stolen_) {
    if (world.day() < scenario_.day) return;
    execute_theft(world);
    next_action_day_ = world.day() + scenario_.dormancy_days;
    return;
  }
  if (next_phase_ >= scenario_.movement.size()) return;
  if (world.day() < next_action_day_) return;

  char phase = scenario_.movement[next_phase_];
  if (phase == '/') {
    ++next_phase_;
    phase = next_phase_ < scenario_.movement.size()
                ? scenario_.movement[next_phase_]
                : '\0';
    if (phase == '\0') return;
  }
  execute_phase(world, phase);
}

void ThiefActor::execute_theft(World& world) {
  stolen_ = true;
  TheftRecord& rec = record(world);

  Amount want = btc_fraction(scenario_.btc);
  std::vector<std::pair<Actor*, Amount>> victims;

  if (scenario_.victim.empty()) {
    // Trojan-style: drain many individual users.
    Rng& rng = wallet().rng();
    Amount remaining = want;
    for (int i = 0; i < 20 && remaining > 0; ++i) {
      Actor& user = world.actor(world.random_user(rng));
      Amount have = user.wallet().balance(world.height(), world.maturity());
      Amount take = std::min(remaining, have / 2);
      if (take > btc(1)) {
        victims.emplace_back(&user, take);
        remaining -= take;
      }
    }
  } else {
    Actor* victim = world.find_actor(scenario_.victim);
    if (victim == nullptr) return;
    Amount have =
        victim->wallet().balance(world.height(), world.maturity());
    victims.emplace_back(victim, std::min(want, have * 3 / 5));
  }

  for (auto& [victim, amount] : victims) {
    if (amount <= wallet().policy().dust) continue;
    // fistlint:allow(float-amount) seeded-sim fraction split with
    // deterministic truncation
    Amount dormant_part = static_cast<Amount>(static_cast<double>(amount) *
                                              scenario_.dormant_fraction);
    Amount active_part = amount - dormant_part;

    PaymentSpec spec;
    if (active_part > wallet().policy().dust) {
      // Loot arrives across several thief addresses (as in the real
      // thefts), so the later aggregation step is visible on-chain.
      Rng& lrng = wallet().rng();
      int chunks = 3 + static_cast<int>(lrng.below(3));
      Amount remaining = active_part;
      for (int c = 0; c < chunks && remaining > wallet().policy().dust;
           ++c) {
        Amount part = (c + 1 == chunks)
                          ? remaining
                          : remaining / (chunks - c) +
                                static_cast<Amount>(
                                    lrng.below(static_cast<std::uint64_t>(
                                        remaining / (2 * chunks) + 1)));
        part = std::min(part, remaining);
        if (part <= wallet().policy().dust) break;
        Address a = wallet().fresh_address();
        spec.outputs.emplace_back(a, part);
        rec.thief_addresses.push_back(a);
        remaining -= part;
      }
    }
    if (dormant_part > wallet().policy().dust) {
      Address d = dormant_.fresh_address();
      spec.outputs.emplace_back(d, dormant_part);
      rec.thief_addresses.push_back(d);
    }
    if (spec.outputs.empty()) continue;
    spec.force_fresh_change = true;
    std::optional<BuiltPayment> built =
        victim->wallet().pay(spec, world.height(), world.maturity());
    if (!built) continue;
    world.submit(victim->id(), *built, victim->wallet().policy().fee);
    rec.theft_txids.push_back(built->txid);
    rec.stolen += amount;
    rec.dormant += dormant_part;
  }
}

void ThiefActor::execute_phase(World& world, char phase) {
  TheftRecord& rec = record(world);
  Rng& rng = wallet().rng();

  // When another aggregation-type phase is still ahead, keep a few
  // coins back so it has something visible to aggregate. A folding
  // phase must hold back *old* (loot) coins — its signature is mixing
  // freshly bought clean coins in — while a plain aggregation holds
  // back the newest.
  bool more_aggregation =
      scenario_.movement.find_first_of("AF", next_phase_ + 1) !=
      std::string::npos;
  bool hold_back = more_aggregation && wallet().coin_count() > 5;
  std::size_t sweep_cap =
      hold_back && phase == 'A' ? wallet().coin_count() - 3 : 4096;
  std::size_t sweep_skip = hold_back && phase == 'F' ? 2 : 0;

  switch (phase) {
    case 'A': {
      if (aggregate(world, *this, 1, sweep_cap)) {
        rec.executed_movement += rec.executed_movement.empty() ? "A" : "/A";
        ++next_phase_;
      }
      break;
    }
    case 'F': {
      // Folding needs clean coins first: buy some, then sweep together.
      if (!clean_acquired_) {
        if (!clean_requested_) {
          // Buy clean coins from whichever exchange will sell.
          const auto& exchanges = world.of_category(Category::BankExchange);
          bool bought = false;
          for (std::size_t i = 0; i < exchanges.size() && !bought; ++i) {
            auto& exchange =
                dynamic_cast<CustodialService&>(world.actor(exchanges[i]));
            bought = exchange.sell_coins(
                world, wallet().receive_address(),
                btc_fraction(5.0 + rng.unit() * 20.0));
          }
          if (!bought) {
            clean_acquired_ = true;  // nobody selling; fold what we have
            return;
          }
          clean_requested_ = true;
          next_action_day_ = world.day() + 2;
          return;
        }
        clean_acquired_ = true;  // the purchase has arrived by now
      }
      if (aggregate(world, *this, 1, 4096, sweep_skip)) {
        rec.executed_movement += rec.executed_movement.empty() ? "F" : "/F";
        ++next_phase_;
      }
      break;
    }
    case 'P': {
      run_peel_phase(world);
      rec.executed_movement += rec.executed_movement.empty() ? "P" : "/P";
      ++next_phase_;
      break;
    }
    case 'S': {
      int ways = 2 + static_cast<int>(rng.below(3));
      if (split(world, *this, ways)) {
        rec.executed_movement += rec.executed_movement.empty() ? "S" : "/S";
        ++next_phase_;
      }
      break;
    }
    default:
      ++next_phase_;
      break;
  }
  next_action_day_ = world.day() + 2;
}

void ThiefActor::run_peel_phase(World& world) {
  TheftRecord& rec = record(world);
  Rng& rng = wallet().rng();
  std::optional<WalletCoin> coin =
      largest_coin(wallet(), world.height(), world.maturity());
  if (!coin) return;

  OutPoint tip = coin->outpoint;
  Amount remaining = coin->value;
  int hops = 15 + static_cast<int>(rng.below(15));
  for (int hop = 0; hop < hops; ++hop) {
    // fistlint:allow(float-amount) seeded-sim peel sizing with
    // deterministic truncation
    Amount peel = static_cast<Amount>(static_cast<double>(remaining) *
                                      (0.02 + rng.unit() * 0.06));
    if (peel <= wallet().policy().dust ||
        peel + wallet().policy().fee * 2 >= remaining)
      break;

    Address to;
    std::string service;
    bool exchange_hop = scenario_.to_exchange && (hop % 10 == 9);
    if (exchange_hop && !world.of_category(Category::BankExchange).empty()) {
      ActorId ex = world.pick_service(Category::BankExchange, rng);
      auto& exchange = dynamic_cast<CustodialService&>(world.actor(ex));
      to = exchange.request_deposit_address(world, id());
      service = exchange.name();
    } else if (rng.chance(0.6)) {
      // Park the peel on a sock-puppet address of our own — the
      // Bitfloor thief's pattern: "large peels off several initial
      // peeling chains were then aggregated".
      to = wallet().fresh_address();
    } else {
      ActorId user = world.random_user(rng);
      to = world.actor(user).wallet().receive_address();
    }

    std::optional<BuiltPayment> built =
        peel_hop(world, *this, tip, to, peel);
    if (!built || !built->change_address) break;
    if (!service.empty())
      rec.exchange_peels.push_back(
          PeelTruth{0, hop, service, peel, built->txid});
    tip = OutPoint{built->txid,
                   static_cast<std::uint32_t>(built->tx.outputs.size() - 1)};
    remaining = built->change_value;
  }
}

}  // namespace fist::sim
