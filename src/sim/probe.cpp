#include "sim/probe.hpp"

#include "sim/hoard.hpp"
#include "sim/services.hpp"

namespace fist::sim {

void ProbeActor::tag_address(World& world, const Address& addr,
                             const Actor& service) {
  if (tagged_.insert(addr).second) {
    world.add_tag(addr, Tag{service.name(), service.category(),
                            TagSource::Observed});
  }
}

bool ProbeActor::pay_service(World& world, const Address& to, Amount value) {
  PaymentSpec spec;
  spec.outputs.emplace_back(to, value);
  std::optional<BuiltPayment> built =
      wallet().pay(spec, world.height(), world.maturity());
  if (!built) return false;
  world.submit(id(), *built, wallet().policy().fee);
  ++interactions_;
  return true;
}

void ProbeActor::on_day(World& world) {
  if (world.day() < start_day_) return;

  // Build the visit schedule once: every service, most reliable (and
  // most interesting) categories first.
  if (!schedule_built_) {
    schedule_built_ = true;
    static constexpr Category kOrder[] = {
        Category::Mining,      Category::Wallet,   Category::BankExchange,
        Category::FixedExchange, Category::Vendor, Category::Gambling,
        Category::Investment,  Category::Mix,      Category::Misc};
    // Two full laps: the paper made "multiple deposit and withdrawal
    // transactions for each" service (344 transactions total).
    for (int lap = 0; lap < 2; ++lap)
      for (Category c : kOrder)
        for (ActorId a : world.of_category(c)) to_visit_.push_back(a);
  }

  // Fund the probe: buy coins (if any exchange will sell) and mine with
  // the top pools — both things the authors actually did.
  if (!funded_) {
    funded_ = true;
    Rng& rng = wallet().rng();
    if (!world.of_category(Category::BankExchange).empty()) {
      for (int i = 0; i < 2; ++i) {
        ActorId ex = world.pick_service(Category::BankExchange, rng);
        engaged_.insert(ex);  // buying coins is an interaction too
        auto& exchange = dynamic_cast<CustodialService&>(world.actor(ex));
        exchange.sell_coins(world, wallet().receive_address(), btc(25));
      }
    }
    const auto& pools = world.of_category(Category::Mining);
    for (std::size_t i = 0; i < pools.size() && i < 3; ++i) {
      engaged_.insert(pools[i]);
      dynamic_cast<MiningPool&>(world.actor(pools[i])).add_member(id());
    }
    return;  // coins arrive with the next payout / withdrawal run
  }

  // Execute due withdrawals from custodial services.
  std::size_t pending = pending_withdrawals_.size();
  for (std::size_t i = 0; i < pending; ++i) {
    auto [svc, due] = pending_withdrawals_.front();
    pending_withdrawals_.pop_front();
    if (due > world.day()) {
      pending_withdrawals_.emplace_back(svc, due);
      continue;
    }
    Actor& actor = world.actor(svc);
    if (auto* cust = dynamic_cast<CustodialService*>(&actor)) {
      Amount balance = cust->account_balance(id());
      if (balance > wallet().policy().fee * 4) {
        cust->request_withdrawal(world, id(), balance / 2,
                                 wallet().fresh_address());
        ++interactions_;
      }
    }
  }

  // Visit a few services per day.
  for (int n = 0; n < 3 && !to_visit_.empty(); ++n) {
    ActorId svc = to_visit_.front();
    to_visit_.pop_front();
    visit(world, svc);
  }
}

void ProbeActor::visit(World& world, ActorId service) {
  Actor& actor = world.actor(service);
  engaged_.insert(service);
  Rng& rng = wallet().rng();
  Amount spendable = wallet().balance(world.height(), world.maturity());
  Amount small = btc_fraction(0.2 + rng.unit() * 0.8);
  if (small * 3 > spendable) small = spendable / 4;
  if (small <= wallet().policy().fee) return;

  if (auto* pool = dynamic_cast<MiningPool*>(&actor)) {
    // "Mined" with the pool: join the next payout.
    pool->add_member(id());
    ++interactions_;
    return;
  }
  if (auto* market = dynamic_cast<SilkRoadMarket*>(&actor)) {
    // "We also kept a wallet with Silk Road."
    Address escrow = market->escrow_address(world);
    tag_address(world, escrow, actor);
    pay_service(world, escrow, small);
    return;
  }
  if (auto* cust = dynamic_cast<CustodialService*>(&actor)) {
    Address dep = cust->request_deposit_address(world, id());
    tag_address(world, dep, actor);
    if (pay_service(world, dep, small))
      pending_withdrawals_.emplace_back(service, world.day() + 2);
    return;
  }
  if (auto* fixed = dynamic_cast<FixedExchange*>(&actor)) {
    Address dep = fixed->request_conversion(world, wallet().fresh_address());
    tag_address(world, dep, actor);
    pay_service(world, dep, small);
    return;
  }
  if (auto* vendor = dynamic_cast<VendorService*>(&actor)) {
    auto [addr, owner] = vendor->request_invoice(world, id());
    tag_address(world, addr, world.actor(owner));
    pay_service(world, addr, small);
    return;
  }
  if (auto* gw = dynamic_cast<PaymentGateway*>(&actor)) {
    Address addr = gw->invoice(world, service);
    tag_address(world, addr, actor);
    pay_service(world, addr, small);
    return;
  }
  if (auto* dice = dynamic_cast<DiceGame*>(&actor)) {
    Address bet = dice->bet_address(world);
    tag_address(world, bet, actor);
    pay_service(world, bet, small);
    return;
  }
  if (auto* mixer = dynamic_cast<MixerService*>(&actor)) {
    Address dep = mixer->request_mix(world, wallet().fresh_address());
    tag_address(world, dep, actor);
    pay_service(world, dep, small);
    return;
  }
  if (auto* scheme = dynamic_cast<InvestmentScheme*>(&actor)) {
    if (scheme->absconded()) return;
    Address dep = scheme->request_deposit_address(world, id());
    tag_address(world, dep, actor);
    if (pay_service(world, dep, small))
      pending_withdrawals_.emplace_back(service, world.day() + 7);
    return;
  }
}

void ProbeActor::on_deposit(World& world, const Address& to, Amount value,
                            const Hash256& txid, ActorId from) {
  (void)to;
  (void)value;
  if (from == kNoActor || from == id()) return;
  if (!engaged_.contains(from)) return;  // we can only label who we know
  const Actor& sender = world.actor(from);
  if (sender.category() == Category::User) return;

  // A service paid us: its payment's input addresses are its own —
  // read them off the (public) transaction, as §3.1 did.
  const Transaction* tx = world.find_recent_tx(txid);
  if (tx == nullptr) return;
  ++interactions_;
  for (const TxIn& in : tx->inputs) {
    std::optional<Address> spender = spender_address(in.script_sig);
    if (spender) tag_address(world, *spender, sender);
  }
}

}  // namespace fist::sim
