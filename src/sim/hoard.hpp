// hoard.hpp — the Silk Road marketplace and its 1DkyBEKt-style hoard.
//
// Reproduces the paper's Table-2 case study: a marketplace accumulates
// enormous aggregate deposits into a single address, then dissolves it
// through a scripted sequence of withdrawals whose final chunk splits
// into three peeling chains feeding exchanges, wallets, gambling sites
// and vendors. Every peel is journaled so the forensic reconstruction
// can be scored.
#pragma once

#include "sim/actor.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace fist::sim {

/// Marketplace + hoard actor ("Silk Road" in the default world).
class SilkRoadMarket final : public Actor {
 public:
  /// `dissolve_day` — when the hoard starts being emptied.
  SilkRoadMarket(std::string name, Wallet wallet, Wallet hoard_wallet,
                 int dissolve_day)
      : Actor(std::move(name), Category::Vendor, std::move(wallet)),
        hoard_(std::move(hoard_wallet)),
        dissolve_day_(dissolve_day) {}

  /// Escrow address for a purchase (the marketplace side of a sale).
  Address escrow_address(World& world);

  void on_day(World& world) override;

  std::vector<Wallet*> wallets() override { return {&wallet(), &hoard_}; }

 private:
  Wallet hoard_;
  void accumulate(World& world);
  void dissolve(World& world);
  void run_peel_chains(World& world);

  int dissolve_day_;
  std::optional<Address> hoard_address_;
  Amount hoard_balance_ = 0;
  bool dissolved_ = false;

  struct Chain {
    OutPoint tip;
    Amount remaining = 0;
    int hops_done = 0;
    bool exhausted = false;
  };
  std::vector<Chain> chains_;
};

}  // namespace fist::sim
