// probe.hpp — the re-identification actor (§3.1 of the paper).
//
// The paper's authors opened accounts with and transacted with every
// service category, labeling the addresses they observed. ProbeActor
// does exactly that against the simulated ecosystem: it deposits,
// withdraws, buys, bets and mixes, tagging (a) the deposit/invoice/bet
// addresses it is given and (b) the input addresses of every payment a
// service sends it. The resulting tags go to the world's tag feed with
// TagSource::Observed.
#pragma once

#include <deque>
#include <unordered_set>

#include "sim/actor.hpp"
#include "sim/world.hpp"

namespace fist::sim {

/// The paper-authors actor.
class ProbeActor final : public Actor {
 public:
  ProbeActor(std::string name, Wallet wallet, int start_day)
      : Actor(std::move(name), Category::User, std::move(wallet)),
        start_day_(start_day) {}

  void on_day(World& world) override;
  void on_deposit(World& world, const Address& to, Amount value,
                  const Hash256& txid, ActorId from) override;

  /// Number of transactions the probe participated in (the paper's
  /// "344 transactions" analogue).
  int interactions() const noexcept { return interactions_; }

  /// Distinct addresses tagged by direct observation.
  std::size_t tagged_addresses() const noexcept { return tagged_.size(); }

 private:
  void visit(World& world, ActorId service);
  void tag_address(World& world, const Address& addr, const Actor& service);
  bool pay_service(World& world, const Address& to, Amount value);

  int start_day_;
  bool funded_ = false;
  std::deque<ActorId> to_visit_;
  bool schedule_built_ = false;
  std::deque<std::pair<ActorId, int>> pending_withdrawals_;
  std::unordered_set<Address> tagged_;
  /// Services we deliberately engaged — only their payments may be
  /// attributed (we cannot label a sender we never dealt with).
  std::unordered_set<ActorId> engaged_;
  int interactions_ = 0;
};

}  // namespace fist::sim
