// export.hpp — CSV and Graphviz exporters.
//
// Downstream users (notebooks, Gephi, spreadsheet forensics) want the
// pipeline's products in boring formats. These writers emit:
//   * clusters.csv      — address, cluster, service, category
//   * balances.csv      — the Figure-2 series, one row per snapshot
//   * flows.dot / .csv  — the condensed user graph
//   * peels.csv         — a followed peeling chain
// All output is deterministic (sorted where maps are involved).
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/balances.hpp"
#include "analysis/graph.hpp"
#include "analysis/peeling.hpp"
#include "chain/view.hpp"
#include "cluster/clustering.hpp"
#include "tag/naming.hpp"

namespace fist {

/// Writes "address,cluster,service,category" for every address.
/// Unnamed clusters emit empty service/category fields.
void export_clusters_csv(std::ostream& os, const ChainView& view,
                         const Clustering& clustering,
                         const ClusterNaming& naming);

/// Writes the Figure-2 series: "date,category,balance_btc,pct_active".
void export_balances_csv(std::ostream& os, const BalanceSeries& series);

/// Writes "from,to,value_btc,tx_count" for every condensed-graph edge,
/// labeling named clusters by service.
void export_flows_csv(std::ostream& os, const UserGraph& graph,
                      const ClusterNaming& naming);

/// Writes a Graphviz digraph of the `top_n` heaviest flows; named
/// clusters are boxed and labeled, edge width scales with value.
void export_flows_dot(std::ostream& os, const UserGraph& graph,
                      const ClusterNaming& naming, std::size_t top_n = 40);

/// Writes "hop,txid,recipient,value_btc,service,category" for a chain.
void export_peels_csv(std::ostream& os, const ChainView& view,
                      const PeelChainResult& chain);

/// Escapes a CSV field (quotes when needed).
std::string csv_escape(const std::string& field);

}  // namespace fist
