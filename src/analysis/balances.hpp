// balances.hpp — per-category balance time series (the paper's Fig. 2).
//
// Using the refined clustering and the tag-derived cluster names, track
// how many bitcoins each service category holds over time, expressed as
// a percentage of *active* coins — coins not parked in "sink" addresses
// that have never spent.
#pragma once

#include <array>
#include <vector>

#include "chain/view.hpp"
#include "cluster/clustering.hpp"
#include "core/executor.hpp"
#include "tag/naming.hpp"
#include "util/timeutil.hpp"

namespace fist {

/// One category's balance trajectory.
struct CategoryTrack {
  Category category = Category::Misc;
  std::vector<Amount> balance;   ///< per snapshot
  std::vector<double> pct_active;  ///< balance / active supply
};

/// The full Figure-2 dataset.
struct BalanceSeries {
  std::vector<Timestamp> times;              ///< snapshot instants
  std::vector<CategoryTrack> tracks;         ///< named categories
  std::vector<Amount> active_supply;         ///< non-sink coins
  std::vector<Amount> total_supply;          ///< minted so far
};

/// Computes category balances over time.
/// `snapshot_interval` — seconds between snapshots (e.g. 7*kDay).
/// Tracks are emitted for the categories the paper charts (exchanges,
/// mining, wallets, gambling, vendors, fixed, investment) plus mix.
BalanceSeries category_balances(const ChainView& view,
                                const Clustering& clustering,
                                const ClusterNaming& naming,
                                Timestamp snapshot_interval);

/// Parallel variant: the chain is cut at exactly the sequential pass's
/// snapshot boundaries, workers accumulate per-segment balance deltas
/// into worker-local accumulators, and a sequential prefix walk over
/// the segments emits the series. All reductions are integer sums, so
/// the result is bit-identical to the sequential pass for every worker
/// count (worker_count() == 1 takes the sequential path directly).
BalanceSeries category_balances(const ChainView& view,
                                const Clustering& clustering,
                                const ClusterNaming& naming,
                                Timestamp snapshot_interval, Executor& exec);

}  // namespace fist
