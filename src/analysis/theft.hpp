// theft.hpp — theft-flow tracking and movement classification (Table 3).
//
// Starting from the publicly identifiable theft transactions, taint the
// loot and follow it forward, classifying each movement the way §5
// does: aggregations (A), folding (F — aggregation mixing in coins not
// clearly associated with the theft), splits (S) and peeling chains
// (P); and report whether, and how much, tainted value reached known
// exchanges.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "chain/view.hpp"
#include "cluster/clustering.hpp"
#include "cluster/heuristic2.hpp"
#include "tag/naming.hpp"

namespace fist {

/// A movement phase recovered from the chain.
enum class MovePhase : char {
  Aggregation = 'A',
  Peeling = 'P',
  Split = 'S',
  Folding = 'F',
};

/// A tainted deposit into a named exchange.
struct ExchangeDeposit {
  std::string service;
  Amount value = 0;
  TxIndex tx = kNoTx;
};

/// Tracking result for one theft.
struct TheftTrace {
  /// Movement phases in first-occurrence order, rendered "A/P/S".
  std::string movement;
  /// Tainted value that reached exchange-category clusters.
  Amount to_exchanges = 0;
  std::vector<ExchangeDeposit> exchange_deposits;
  /// Tainted value that never moved (still unspent at scan end).
  Amount dormant = 0;
  /// Transactions visited while tracking.
  int txs_followed = 0;
};

/// Tracking knobs.
struct TheftTrackOptions {
  int max_txs = 5000;        ///< visit budget
  int peel_run_threshold = 3;  ///< consecutive peel hops to call it "P"
  /// Stop following branches carrying less than this value.
  Amount min_branch_value = 100'000;  // 0.001 BTC
};

/// Follows the loot of a theft. `theft_txs` are the theft transactions;
/// `thief_outputs` the output slots paying the thief (if empty, every
/// output of each theft tx is treated as loot).
TheftTrace track_theft(const ChainView& view, const H2Result& changes,
                       const Clustering& clustering,
                       const ClusterNaming& naming,
                       const std::vector<TxIndex>& theft_txs,
                       const std::vector<AddrId>& thief_addrs,
                       const TheftTrackOptions& options = {});

}  // namespace fist
