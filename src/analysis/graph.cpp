#include "analysis/graph.hpp"

#include <algorithm>
#include <array>

namespace fist {

namespace {

std::uint64_t edge_key(ClusterId from, ClusterId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

UserGraph UserGraph::build(const ChainView& view,
                           const Clustering& clustering) {
  UserGraph g;
  g.nodes_ = clustering.cluster_count();
  for (const TxView& tx : view.txs()) {
    if (tx.coinbase || tx.inputs.empty()) continue;
    AddrId sender_addr = kNoAddr;
    for (const InputView& in : tx.inputs) {
      if (in.addr != kNoAddr) {
        sender_addr = in.addr;
        break;
      }
    }
    if (sender_addr == kNoAddr) continue;
    ClusterId from = clustering.cluster_of(sender_addr);

    for (const OutputView& out : tx.outputs) {
      if (out.addr == kNoAddr) continue;
      ClusterId to = clustering.cluster_of(out.addr);
      if (to == from) continue;  // change / internal shuffle
      EdgeData& e = g.weights_[edge_key(from, to)];
      e.value += out.value;
      e.tx_count += 1;
      g.sent_[from] += out.value;
      g.received_[to] += out.value;
    }
  }
  return g;
}

std::vector<ClusterEdge> UserGraph::edges() const {
  std::vector<ClusterEdge> out;
  out.reserve(weights_.size());
  // fistlint:allow(unordered-iter) collected then fully sorted below
  for (const auto& [key, data] : weights_) {
    out.push_back(ClusterEdge{static_cast<ClusterId>(key >> 32),
                              static_cast<ClusterId>(key), data.value,
                              data.tx_count});
  }
  std::sort(out.begin(), out.end(),
            [](const ClusterEdge& a, const ClusterEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  return out;
}

std::vector<ClusterEdge> UserGraph::top_flows(std::size_t n) const {
  std::vector<ClusterEdge> all = edges();
  std::sort(all.begin(), all.end(),
            [](const ClusterEdge& a, const ClusterEdge& b) {
              if (a.value != b.value) return a.value > b.value;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<ClusterEdge> UserGraph::out_edges(ClusterId from) const {
  std::vector<ClusterEdge> out;
  // fistlint:allow(unordered-iter) collected then fully sorted below
  for (const auto& [key, data] : weights_) {
    if (static_cast<ClusterId>(key >> 32) != from) continue;
    out.push_back(ClusterEdge{from, static_cast<ClusterId>(key), data.value,
                              data.tx_count});
  }
  std::sort(out.begin(), out.end(),
            [](const ClusterEdge& a, const ClusterEdge& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.to < b.to;  // total order: ties broken by target id
            });
  return out;
}

Amount UserGraph::total_sent(ClusterId c) const noexcept {
  auto it = sent_.find(c);
  return it == sent_.end() ? 0 : it->second;
}

Amount UserGraph::total_received(ClusterId c) const noexcept {
  auto it = received_.find(c);
  return it == received_.end() ? 0 : it->second;
}

std::vector<CategoryFlowShare> category_flow_shares(
    const UserGraph& graph, const ClusterNaming& naming) {
  std::array<Amount, kCategoryCount> received{};
  Amount total = 0;
  for (const ClusterEdge& e : graph.edges()) {
    total += e.value;
    if (const ClusterName* name = naming.name_of(e.to))
      received[static_cast<std::size_t>(name->category)] += e.value;
  }
  std::vector<CategoryFlowShare> out;
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    if (received[i] == 0) continue;
    CategoryFlowShare share;
    share.category = category_at(i);
    share.received = received[i];
    share.share = total > 0 ? static_cast<double>(received[i]) /
                                  static_cast<double>(total)
                            : 0;
    out.push_back(share);
  }
  std::sort(out.begin(), out.end(),
            [](const CategoryFlowShare& a, const CategoryFlowShare& b) {
              return a.received > b.received;
            });
  return out;
}

}  // namespace fist
