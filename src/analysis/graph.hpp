// graph.hpp — the condensed user graph.
//
// After clustering, transactions between addresses become value flows
// between *users and services* — "a condensed graph, in which nodes
// represent entire users and services rather than individual public
// keys" (§1). This module materializes that graph for exploration.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/view.hpp"
#include "cluster/clustering.hpp"
#include "tag/naming.hpp"

namespace fist {

/// An aggregated directed edge between two clusters.
struct ClusterEdge {
  ClusterId from = 0;
  ClusterId to = 0;
  Amount value = 0;
  std::uint32_t tx_count = 0;
};

/// §5's chokepoint measure for one category: how much of all
/// inter-entity value flows *into* clusters of that category.
struct CategoryFlowShare {
  Category category = Category::Misc;
  Amount received = 0;
  double share = 0;  ///< received / total inter-cluster flow
};

/// The cluster-level flow graph.
class UserGraph {
 public:
  /// Builds the condensed graph: for each transaction, value flows from
  /// the (single, post-clustering) sending cluster to each receiving
  /// cluster. Self-flows (change) are excluded.
  static UserGraph build(const ChainView& view,
                         const Clustering& clustering);

  /// All edges (unordered).
  std::vector<ClusterEdge> edges() const;

  /// The `n` heaviest edges by value, descending.
  std::vector<ClusterEdge> top_flows(std::size_t n) const;

  /// Outgoing edges of a cluster.
  std::vector<ClusterEdge> out_edges(ClusterId from) const;

  /// Total value sent / received by a cluster.
  Amount total_sent(ClusterId c) const noexcept;
  Amount total_received(ClusterId c) const noexcept;

  std::size_t edge_count() const noexcept { return weights_.size(); }
  std::size_t node_count() const noexcept { return nodes_; }

 private:
  struct EdgeData {
    Amount value = 0;
    std::uint32_t tx_count = 0;
  };

  std::unordered_map<std::uint64_t, EdgeData> weights_;
  std::unordered_map<ClusterId, Amount> sent_;
  std::unordered_map<ClusterId, Amount> received_;
  std::size_t nodes_ = 0;
};

/// Computes per-category inflow shares over the condensed graph — the
/// §5 "exchanges are chokepoints" quantification. Returned sorted by
/// share, descending; only named clusters contribute.
std::vector<CategoryFlowShare> category_flow_shares(
    const UserGraph& graph, const ClusterNaming& naming);

}  // namespace fist
