// peeling.hpp — systematic peeling-chain traversal (§5, Table 2).
//
// "At each hop, we look at the two output addresses in the transaction.
// If one of these output addresses is a change address, we can follow
// the chain to the next hop... and can identify the meaningful
// recipient in the transaction as the other output address."
//
// The follower walks change links produced by Heuristic 2, recording
// every peel — recipient address, value, and (via the cluster naming)
// which known service, if any, received it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chain/view.hpp"
#include "cluster/clustering.hpp"
#include "cluster/heuristic2.hpp"
#include "tag/naming.hpp"

namespace fist {

/// One peel along a chain.
struct Peel {
  int hop = 0;
  TxIndex tx = kNoTx;
  AddrId recipient = kNoAddr;
  Amount value = 0;
  /// Service name of the recipient's cluster ("" if unnamed).
  std::string service;
  Category category = Category::User;
};

/// Why a walk stopped.
enum class ChainEnd {
  MaxHops,       ///< hop budget exhausted
  Unspent,       ///< current coin not yet spent
  NoChangeLink,  ///< spending tx had no identified change address
};

/// A reconstructed peeling chain.
struct PeelChainResult {
  std::vector<Peel> peels;
  int hops = 0;
  int shape_hops = 0;  ///< hops continued via peel-shape, not an H2 label
  ChainEnd end = ChainEnd::MaxHops;
  Amount final_amount = 0;  ///< remaining value at the last hop
};

/// Traversal options.
struct FollowOptions {
  int max_hops = 100;

  /// When a hop has no Heuristic-2 change label, fall back to the
  /// peel *shape* the paper describes — "a small amount is peeled off
  /// ... and the remainder is sent to a one-time change address":
  /// continue through the dominant output if it carries at least
  /// `dominance` times every other output. Such hops are counted in
  /// shape_hops (lower confidence).
  bool follow_peel_shape = true;
  double dominance = 2.0;
};

/// Walks peeling chains over a chain view.
class PeelFollower {
 public:
  /// `changes` must come from a Heuristic-2 pass over the same view;
  /// `naming` attributes peel recipients (pass cluster naming built on
  /// the same clustering).
  PeelFollower(const ChainView& view, const H2Result& changes,
               const Clustering& clustering, const ClusterNaming& naming)
      : view_(&view),
        changes_(&changes),
        clustering_(&clustering),
        naming_(&naming) {}

  /// Follows the chain beginning at output `out_index` of `start_tx`
  /// (i.e. the first hop is the transaction that spends that coin).
  PeelChainResult follow(TxIndex start_tx, std::uint32_t out_index,
                         const FollowOptions& options = {}) const;

 private:
  const ChainView* view_;
  const H2Result* changes_;
  const Clustering* clustering_;
  const ClusterNaming* naming_;
};

/// Aggregates per-service peel counts/values, i.e. one column group of
/// the paper's Table 2.
struct ServicePeelSummary {
  std::string service;
  Category category = Category::Misc;
  int peels = 0;
  Amount total = 0;
};

/// Summarizes a chain's peels by receiving service (named ones only),
/// sorted by service name for stable output.
std::vector<ServicePeelSummary> summarize_peels(const PeelChainResult& chain);

}  // namespace fist
