#include "analysis/peeling.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace fist {

PeelChainResult PeelFollower::follow(TxIndex start_tx,
                                     std::uint32_t out_index,
                                     const FollowOptions& options) const {
  PeelChainResult result;
  if (start_tx >= view_->tx_count())
    throw UsageError("PeelFollower::follow: bad start tx");
  const TxView* cur_tx = &view_->tx(start_tx);
  if (out_index >= cur_tx->outputs.size())
    throw UsageError("PeelFollower::follow: bad output index");

  TxIndex coin_tx = start_tx;
  std::uint32_t coin_out = out_index;

  while (result.hops < options.max_hops) {
    const OutputView& coin = view_->tx(coin_tx).outputs[coin_out];
    result.final_amount = coin.value;
    TxIndex spender = coin.spent_by;
    if (spender == kNoTx) {
      result.end = ChainEnd::Unspent;
      return result;
    }
    const TxView& hop_tx = view_->tx(spender);
    AddrId change = (*changes_).change_of_tx[spender];

    // Decide the continuation slot.
    std::uint32_t change_slot = 0xffffffffu;
    if (change != kNoAddr) {
      for (std::uint32_t i = 0; i < hop_tx.outputs.size(); ++i) {
        if (hop_tx.outputs[i].addr == change) {
          change_slot = i;
          break;
        }
      }
    } else if (options.follow_peel_shape && hop_tx.outputs.size() >= 2) {
      // No label — fall back to the peel shape: a dominant remainder
      // alongside (comparatively) small peels.
      std::uint32_t best = 0;
      Amount best_value = -1, second = -1;
      for (std::uint32_t i = 0; i < hop_tx.outputs.size(); ++i) {
        Amount v = hop_tx.outputs[i].value;
        if (v > best_value) {
          second = best_value;
          best_value = v;
          best = i;
        } else if (v > second) {
          second = v;
        }
      }
      if (second >= 0 &&
          static_cast<double>(best_value) >=
              options.dominance * static_cast<double>(second)) {
        change_slot = best;
        ++result.shape_hops;
      }
    }
    if (change_slot == 0xffffffffu) {
      result.end = ChainEnd::NoChangeLink;
      return result;
    }

    // Record every non-continuation output as a meaningful recipient.
    for (std::uint32_t i = 0; i < hop_tx.outputs.size(); ++i) {
      if (i == change_slot) continue;
      const OutputView& out = hop_tx.outputs[i];
      Peel peel;
      peel.hop = result.hops;
      peel.tx = spender;
      peel.recipient = out.addr;
      peel.value = out.value;
      if (out.addr != kNoAddr) {
        ClusterId c = clustering_->cluster_of(out.addr);
        if (const ClusterName* name = naming_->name_of(c)) {
          peel.service = name->service;
          peel.category = name->category;
        }
      }
      result.peels.push_back(std::move(peel));
    }

    coin_tx = spender;
    coin_out = change_slot;
    ++result.hops;
  }
  result.end = ChainEnd::MaxHops;
  result.final_amount = view_->tx(coin_tx).outputs[coin_out].value;
  return result;
}

std::vector<ServicePeelSummary> summarize_peels(
    const PeelChainResult& chain) {
  std::map<std::string, ServicePeelSummary> by_service;
  for (const Peel& peel : chain.peels) {
    if (peel.service.empty()) continue;
    ServicePeelSummary& s = by_service[peel.service];
    s.service = peel.service;
    s.category = peel.category;
    s.peels += 1;
    s.total += peel.value;
  }
  std::vector<ServicePeelSummary> out;
  out.reserve(by_service.size());
  for (auto& [name, summary] : by_service) out.push_back(std::move(summary));
  return out;
}

}  // namespace fist
