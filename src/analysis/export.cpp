#include "analysis/export.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace fist {

std::string csv_escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void export_clusters_csv(std::ostream& os, const ChainView& view,
                         const Clustering& clustering,
                         const ClusterNaming& naming) {
  os << "address,cluster,service,category\n";
  for (AddrId a = 0; a < view.address_count(); ++a) {
    ClusterId c = clustering.cluster_of(a);
    const ClusterName* name = naming.name_of(c);
    os << view.addresses().lookup(a).encode() << ',' << c << ',';
    if (name != nullptr)
      os << csv_escape(name->service) << ','
         << category_name(name->category);
    else
      os << ',';
    os << '\n';
  }
}

void export_balances_csv(std::ostream& os, const BalanceSeries& series) {
  os << "date,category,balance_btc,pct_active\n";
  for (std::size_t i = 0; i < series.times.size(); ++i) {
    for (const CategoryTrack& track : series.tracks) {
      os << format_date(series.times[i]) << ','
         << category_name(track.category) << ','
         << format_btc(track.balance[i]) << ',';
      char pct[24];
      std::snprintf(pct, sizeof(pct), "%.4f", track.pct_active[i]);
      os << pct << '\n';
    }
  }
}

namespace {

std::string node_label(ClusterId c, const ClusterNaming& naming) {
  const ClusterName* name = naming.name_of(c);
  return name != nullptr ? name->service : "user#" + std::to_string(c);
}

}  // namespace

void export_flows_csv(std::ostream& os, const UserGraph& graph,
                      const ClusterNaming& naming) {
  os << "from,to,value_btc,tx_count\n";
  std::vector<ClusterEdge> edges = graph.edges();
  std::sort(edges.begin(), edges.end(),
            [](const ClusterEdge& a, const ClusterEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  for (const ClusterEdge& e : edges) {
    os << csv_escape(node_label(e.from, naming)) << ','
       << csv_escape(node_label(e.to, naming)) << ','
       << format_btc(e.value) << ',' << e.tx_count << '\n';
  }
}

void export_flows_dot(std::ostream& os, const UserGraph& graph,
                      const ClusterNaming& naming, std::size_t top_n) {
  std::vector<ClusterEdge> edges = graph.top_flows(top_n);
  os << "digraph flows {\n  rankdir=LR;\n  node [fontsize=10];\n";
  // Declare named nodes as boxes.
  std::vector<ClusterId> nodes;
  for (const ClusterEdge& e : edges) {
    nodes.push_back(e.from);
    nodes.push_back(e.to);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  Amount max_value = 1;
  for (const ClusterEdge& e : edges) max_value = std::max(max_value, e.value);
  for (ClusterId n : nodes) {
    const ClusterName* name = naming.name_of(n);
    os << "  n" << n << " [label=\"" << node_label(n, naming) << "\"";
    if (name != nullptr) os << ", shape=box, style=filled";
    os << "];\n";
  }
  for (const ClusterEdge& e : edges) {
    double w = 1.0 + 4.0 * static_cast<double>(e.value) /
                         static_cast<double>(max_value);
    os << "  n" << e.from << " -> n" << e.to << " [label=\""
       << format_btc_whole(e.value) << "\", penwidth=" << w << "];\n";
  }
  os << "}\n";
}

void export_peels_csv(std::ostream& os, const ChainView& view,
                      const PeelChainResult& chain) {
  os << "hop,txid,recipient,value_btc,service,category\n";
  for (const Peel& p : chain.peels) {
    os << p.hop << ',' << view.tx(p.tx).txid.hex_reversed() << ',';
    if (p.recipient != kNoAddr)
      os << view.addresses().lookup(p.recipient).encode();
    os << ',' << format_btc(p.value) << ',' << csv_escape(p.service) << ',';
    if (!p.service.empty()) os << category_name(p.category);
    os << '\n';
  }
}

}  // namespace fist
