#include "analysis/theft.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace fist {

namespace {

std::uint64_t coin_key(TxIndex tx, std::uint32_t out) noexcept {
  return (static_cast<std::uint64_t>(tx) << 32) | out;
}

}  // namespace

TheftTrace track_theft(const ChainView& view, const H2Result& changes,
                       const Clustering& clustering,
                       const ClusterNaming& naming,
                       const std::vector<TxIndex>& theft_txs,
                       const std::vector<AddrId>& thief_addrs,
                       const TheftTrackOptions& options) {
  TheftTrace trace;
  if (theft_txs.empty()) return trace;

  std::unordered_set<AddrId> thief_set(thief_addrs.begin(),
                                       thief_addrs.end());
  std::unordered_set<std::uint64_t> tainted;
  // Weakly tainted coins: peel recipients. Not followed on their own,
  // but if one is later co-spent with loot, the multi-input heuristic
  // says the same party controls it — it was a sock-puppet peel.
  std::unordered_set<std::uint64_t> weak;
  TxIndex first = kNoTx;

  for (TxIndex t : theft_txs) {
    if (t >= view.tx_count()) throw UsageError("track_theft: bad theft tx");
    first = std::min(first == kNoTx ? t : first, t);
    const TxView& tx = view.tx(t);
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      const OutputView& out = tx.outputs[i];
      if (out.addr == kNoAddr) continue;
      if (thief_set.empty() || thief_set.contains(out.addr))
        tainted.insert(coin_key(t, i));
    }
  }

  // Is the cluster of `a` a named exchange?
  auto exchange_name = [&](AddrId a) -> const ClusterName* {
    if (a == kNoAddr) return nullptr;
    const ClusterName* name = naming.name_of(clustering.cluster_of(a));
    return (name != nullptr && is_exchange(name->category)) ? name : nullptr;
  };

  std::string events;  // chronological: 'A','F','S','p' (one peel hop)

  for (TxIndex t = first + 1;
       t < view.tx_count() && trace.txs_followed < options.max_txs; ++t) {
    const TxView& tx = view.tx(t);
    std::size_t tainted_in = 0, weak_in = 0;
    Amount tainted_value = 0;
    for (const InputView& in : tx.inputs) {
      if (in.prev_tx == kNoTx) continue;
      std::uint64_t key = coin_key(in.prev_tx, in.prev_index);
      if (tainted.contains(key)) {
        ++tainted_in;
        tainted_value += in.value;
      } else if (weak.contains(key)) {
        ++weak_in;
        tainted_value += in.value;
      }
    }
    if (tainted_in == 0) continue;
    if (tainted_value < options.min_branch_value) continue;
    ++trace.txs_followed;

    AddrId change = changes.change_of_tx[t];

    // Route outputs: exchange-cluster outputs are deposits (recorded,
    // not followed); taint propagation depends on the movement type.
    auto deposit_or_taint = [&](std::uint32_t i, bool taint) {
      const OutputView& out = tx.outputs[i];
      if (const ClusterName* ex = exchange_name(out.addr)) {
        trace.to_exchanges += out.value;
        trace.exchange_deposits.push_back(
            ExchangeDeposit{ex->service, out.value, t});
        return;
      }
      if (taint)
        tainted.insert(coin_key(t, i));
      else
        weak.insert(coin_key(t, i));  // peel recipient; upgrade on co-spend
    };

    if (tx.inputs.size() >= 2) {
      // Aggregation — folding when inputs not associated with the
      // theft (neither loot nor co-spent peels) are mixed in.
      bool clean_mixed = tainted_in + weak_in < tx.inputs.size();
      events.push_back(clean_mixed ? 'F' : 'A');
      for (std::uint32_t i = 0; i < tx.outputs.size(); ++i)
        deposit_or_taint(i, true);
      continue;
    }

    // Single tainted input.
    if (tx.outputs.size() >= 2 && change != kNoAddr) {
      // Peel hop: remainder continues via the change output; peels are
      // meaningful recipients.
      events.push_back('p');
      bool change_seen = false;
      for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
        bool is_change = !change_seen && tx.outputs[i].addr == change;
        if (is_change) change_seen = true;
        deposit_or_taint(i, is_change);
      }
      continue;
    }
    if (tx.outputs.size() >= 2) {
      // No change label. Distinguish the two shapes the paper's manual
      // inspection did: a *peel* (one dominant remainder output) keeps
      // the taint on the remainder only; a *split* (comparable chunks)
      // taints every branch. Tainting peel recipients instead would
      // leak taint into the whole economy.
      std::uint32_t best = 0;
      Amount best_value = -1, second = -1;
      for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
        Amount v = tx.outputs[i].value;
        if (v > best_value) {
          second = best_value;
          best_value = v;
          best = i;
        } else if (v > second) {
          second = v;
        }
      }
      bool peel_shaped = second >= 0 && best_value >= 2 * second;
      if (peel_shaped) {
        events.push_back('p');
        for (std::uint32_t i = 0; i < tx.outputs.size(); ++i)
          deposit_or_taint(i, i == best);
      } else if (tx.outputs.size() <= 8) {
        events.push_back('S');
        for (std::uint32_t i = 0; i < tx.outputs.size(); ++i)
          deposit_or_taint(i, true);
      } else {
        // A wide fan-out (payout-style distribution): the loot has been
        // dispersed; keep following only the dominant branch.
        for (std::uint32_t i = 0; i < tx.outputs.size(); ++i)
          deposit_or_taint(i, i == best);
      }
      continue;
    }
    // Simple one-output move; propagate taint silently.
    deposit_or_taint(0, true);
  }

  // Compress the event string into the paper's movement grammar:
  // runs of >= peel_run_threshold hops become 'P'; shorter peel runs
  // are incidental and dropped; consecutive duplicates collapse.
  std::string movement;
  std::size_t i = 0;
  while (i < events.size()) {
    char e = events[i];
    if (e == 'p') {
      std::size_t j = i;
      while (j < events.size() && events[j] == 'p') ++j;
      if (static_cast<int>(j - i) >= options.peel_run_threshold &&
          (movement.empty() || movement.back() != 'P'))
        movement.push_back('P');
      i = j;
      continue;
    }
    if (movement.empty() || movement.back() != e) movement.push_back(e);
    ++i;
  }
  for (std::size_t k = 0; k < movement.size(); ++k) {
    if (k > 0) trace.movement.push_back('/');
    trace.movement.push_back(movement[k]);
  }

  // Dormant loot: tainted coins never spent.
  // fistlint:allow(unordered-iter) commutative integer sum over a
  // membership set
  for (std::uint64_t key : tainted) {
    TxIndex t = static_cast<TxIndex>(key >> 32);
    std::uint32_t out = static_cast<std::uint32_t>(key);
    const OutputView& o = view.tx(t).outputs[out];
    if (o.spent_by == kNoTx) trace.dormant += o.value;
  }
  return trace;
}

}  // namespace fist
