#include "analysis/explorer.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace fist {

Explorer::Explorer(const ChainView& view, const Clustering& clustering,
                   const ClusterNaming& naming)
    : view_(&view), clustering_(&clustering), naming_(&naming) {
  if (clustering.address_count() != view.address_count())
    throw UsageError("Explorer: clustering does not match the view");
}

std::optional<ClusterId> Explorer::find_service(
    const std::string& service) const {
  std::optional<ClusterId> best;
  std::uint32_t best_size = 0;
  // fistlint:allow(unordered-iter) max-by-size with a total tie-break
  // on cluster id below, so the winner is bucket-order-independent
  for (const auto& [cluster, name] : naming_->names()) {
    if (name.service != service) continue;
    std::uint32_t size = clustering_->size_of(cluster);
    if (!best || size > best_size ||
        (size == best_size && cluster < *best)) {
      best = cluster;
      best_size = size;
    }
  }
  return best;
}

std::string Explorer::label(ClusterId cluster) const {
  const ClusterName* name = naming_->name_of(cluster);
  return name != nullptr ? name->service
                         : "user#" + std::to_string(cluster);
}

EntityProfile Explorer::profile(ClusterId cluster,
                                std::size_t top_n) const {
  if (cluster >= clustering_->cluster_count())
    throw UsageError("Explorer::profile: unknown cluster");
  EntityProfile p;
  p.cluster = cluster;
  p.addresses = clustering_->size_of(cluster);
  if (const ClusterName* name = naming_->name_of(cluster)) {
    p.named = true;
    p.service = name->service;
    p.category = name->category;
  }

  std::map<ClusterId, Amount> inflow, outflow;
  bool first = true;
  for (TxIndex t = 0; t < view_->tx_count(); ++t) {
    const TxView& tx = view_->tx(t);
    Amount in_from_us = 0, out_to_us = 0;
    ClusterId sender = 0xffffffffu;
    for (const InputView& in : tx.inputs) {
      if (in.addr == kNoAddr) continue;
      ClusterId c = clustering_->cluster_of(in.addr);
      if (sender == 0xffffffffu) sender = c;
      if (c == cluster) in_from_us += in.value;
    }
    for (const OutputView& out : tx.outputs) {
      if (out.addr == kNoAddr) continue;
      if (clustering_->cluster_of(out.addr) == cluster)
        out_to_us += out.value;
    }
    if (in_from_us == 0 && out_to_us == 0) continue;

    ++p.tx_count;
    if (first) {
      p.first_seen = tx.time;
      first = false;
    }
    p.last_seen = tx.time;
    p.balance += out_to_us - in_from_us;

    // External flows only: internal shuffles net out above but must not
    // count toward received/sent.
    if (in_from_us > 0 && sender == cluster) {
      Amount external_out = 0;
      for (const OutputView& out : tx.outputs) {
        if (out.addr == kNoAddr) continue;
        ClusterId c = clustering_->cluster_of(out.addr);
        if (c != cluster) {
          external_out += out.value;
          outflow[c] += out.value;
        }
      }
      p.sent += external_out;
    }
    if (out_to_us > 0 && sender != cluster && sender != 0xffffffffu) {
      p.received += out_to_us;
      inflow[sender] += out_to_us;
    } else if (out_to_us > 0 && tx.coinbase) {
      p.received += out_to_us;  // mining income has no sender cluster
    }
  }

  auto top = [&](std::map<ClusterId, Amount>& flows) {
    std::vector<std::pair<ClusterId, Amount>> v(flows.begin(), flows.end());
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (v.size() > top_n) v.resize(top_n);
    return v;
  };
  p.top_sources = top(inflow);
  p.top_destinations = top(outflow);
  return p;
}

std::vector<AddressEvent> Explorer::address_history(AddrId addr) const {
  std::vector<AddressEvent> events;
  if (addr == kNoAddr || addr >= view_->address_count()) return events;
  for (TxIndex t = 0; t < view_->tx_count(); ++t) {
    const TxView& tx = view_->tx(t);
    Amount delta = 0;
    for (const InputView& in : tx.inputs)
      if (in.addr == addr) delta -= in.value;
    for (const OutputView& out : tx.outputs)
      if (out.addr == addr) delta += out.value;
    if (delta != 0) events.push_back(AddressEvent{t, tx.time, delta});
  }
  return events;
}

Amount Explorer::address_balance(AddrId addr) const {
  Amount balance = 0;
  for (const AddressEvent& e : address_history(addr)) balance += e.delta;
  return balance;
}

}  // namespace fist
