#include "analysis/balances.hpp"

namespace fist {

namespace {

// Categories charted in Figure 2, plus mixers for completeness.
constexpr Category kTracked[] = {
    Category::BankExchange, Category::Mining,   Category::Wallet,
    Category::Gambling,     Category::Vendor,   Category::FixedExchange,
    Category::Investment,   Category::Mix};

/// Category of each cluster (from tags); 255 = untracked.
std::vector<std::uint8_t> cluster_categories(const Clustering& clustering,
                                             const ClusterNaming& naming) {
  std::vector<std::uint8_t> cluster_cat(clustering.cluster_count(),
                                        static_cast<std::uint8_t>(255));
  // fistlint:allow(unordered-iter) unique-key scatter into an indexed
  // vector — each cluster is written exactly once, any order
  for (const auto& [cluster, name] : naming.names())
    cluster_cat[cluster] = static_cast<std::uint8_t>(name.category);
  return cluster_cat;
}

/// Marks addresses that ever spend, over the whole observation window.
/// With a real executor, transaction shards mark worker-local tables
/// that are OR-merged per address — a commutative reduction, so the
/// result is independent of shard count and scheduling.
std::vector<std::uint8_t> spending_addresses(const ChainView& view,
                                             Executor* exec) {
  std::vector<std::uint8_t> spends(view.address_count(), 0);
  if (exec == nullptr || exec->inline_mode()) {
    for (const TxView& tx : view.txs())
      for (const InputView& in : tx.inputs)
        if (in.addr != kNoAddr) spends[in.addr] = 1;
    return spends;
  }
  std::size_t n_tx = view.tx_count();
  std::size_t shard_count = exec->worker_count();
  if (shard_count > n_tx) shard_count = n_tx == 0 ? 1 : n_tx;
  std::vector<std::vector<std::uint8_t>> local(shard_count);
  exec->parallel_for_each(0, shard_count, [&](std::size_t s) {
    std::vector<std::uint8_t>& mine = local[s];
    mine.assign(view.address_count(), 0);
    std::size_t lo = n_tx * s / shard_count;
    std::size_t hi = n_tx * (s + 1) / shard_count;
    for (std::size_t t = lo; t < hi; ++t)
      for (const InputView& in : view.txs()[t].inputs)
        if (in.addr != kNoAddr) mine[in.addr] = 1;
  });
  exec->parallel_for(0, spends.size(), 0,
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t a = lo; a < hi; ++a)
                         for (std::size_t s = 0; s < shard_count; ++s)
                           if (local[s][a]) {
                             spends[a] = 1;
                             break;
                           }
                     });
  return spends;
}

}  // namespace

BalanceSeries category_balances(const ChainView& view,
                                const Clustering& clustering,
                                const ClusterNaming& naming,
                                Timestamp snapshot_interval) {
  BalanceSeries series;
  if (view.tx_count() == 0 || snapshot_interval <= 0) return series;

  for (Category c : kTracked)
    series.tracks.push_back(CategoryTrack{c, {}, {}});

  std::vector<std::uint8_t> cluster_cat = cluster_categories(clustering, naming);
  std::vector<std::uint8_t> spends = spending_addresses(view, nullptr);

  std::array<Amount, kCategoryCount> cat_balance{};
  Amount active = 0;
  Amount minted = 0;

  auto category_of = [&](AddrId a) -> int {
    if (a == kNoAddr) return -1;
    std::uint8_t c = cluster_cat[clustering.cluster_of(a)];
    return c == 255 ? -1 : static_cast<int>(c);
  };

  Timestamp next_snapshot = view.tx(0).time + snapshot_interval;
  auto snapshot = [&](Timestamp at) {
    series.times.push_back(at);
    series.active_supply.push_back(active);
    series.total_supply.push_back(minted);
    for (CategoryTrack& track : series.tracks) {
      Amount b = cat_balance[static_cast<std::size_t>(track.category)];
      track.balance.push_back(b);
      track.pct_active.push_back(
          active > 0 ? 100.0 * static_cast<double>(b) /
                           static_cast<double>(active)
                     : 0.0);
    }
  };

  for (const TxView& tx : view.txs()) {
    while (tx.time >= next_snapshot) {
      snapshot(next_snapshot);
      next_snapshot += snapshot_interval;
    }
    if (tx.coinbase) minted += tx.value_out();
    for (const InputView& in : tx.inputs) {
      int c = category_of(in.addr);
      if (c >= 0) cat_balance[static_cast<std::size_t>(c)] -= in.value;
      if (in.addr != kNoAddr && spends[in.addr]) active -= in.value;
    }
    for (const OutputView& out : tx.outputs) {
      int c = category_of(out.addr);
      if (c >= 0) cat_balance[static_cast<std::size_t>(c)] += out.value;
      if (out.addr != kNoAddr && spends[out.addr]) active += out.value;
    }
  }
  snapshot(next_snapshot);
  return series;
}

BalanceSeries category_balances(const ChainView& view,
                                const Clustering& clustering,
                                const ClusterNaming& naming,
                                Timestamp snapshot_interval, Executor& exec) {
  if (exec.inline_mode())
    return category_balances(view, clustering, naming, snapshot_interval);

  BalanceSeries series;
  if (view.tx_count() == 0 || snapshot_interval <= 0) return series;

  for (Category c : kTracked)
    series.tracks.push_back(CategoryTrack{c, {}, {}});

  std::vector<std::uint8_t> cluster_cat = cluster_categories(clustering, naming);
  std::vector<std::uint8_t> spends = spending_addresses(view, &exec);

  auto category_of = [&](AddrId a) -> int {
    if (a == kNoAddr) return -1;
    std::uint8_t c = cluster_cat[clustering.cluster_of(a)];
    return c == 255 ? -1 : static_cast<int>(c);
  };

  // Cut the chain at exactly the snapshot instants the sequential walk
  // would emit: snapshot k covers transactions [0, end_tx_k).
  struct Segment {
    Timestamp at = 0;
    std::size_t end_tx = 0;
  };
  std::vector<Segment> segments;
  std::size_t n_tx = view.tx_count();
  Timestamp next_snapshot = view.tx(0).time + snapshot_interval;
  for (std::size_t t = 0; t < n_tx; ++t) {
    while (view.txs()[t].time >= next_snapshot) {
      segments.push_back(Segment{next_snapshot, t});
      next_snapshot += snapshot_interval;
    }
  }
  segments.push_back(Segment{next_snapshot, n_tx});

  // Per-segment deltas, accumulated by workers independently. Integer
  // sums commute, so each delta matches what the sequential walk would
  // have added over the same transactions.
  struct Delta {
    std::array<Amount, kCategoryCount> cat{};
    Amount active = 0;
    Amount minted = 0;
  };
  std::vector<Delta> deltas(segments.size());
  exec.parallel_for_each(0, segments.size(), [&](std::size_t k) {
    Delta& d = deltas[k];
    std::size_t lo = k == 0 ? 0 : segments[k - 1].end_tx;
    std::size_t hi = segments[k].end_tx;
    for (std::size_t t = lo; t < hi; ++t) {
      const TxView& tx = view.txs()[t];
      if (tx.coinbase) d.minted += tx.value_out();
      for (const InputView& in : tx.inputs) {
        int c = category_of(in.addr);
        if (c >= 0) d.cat[static_cast<std::size_t>(c)] -= in.value;
        if (in.addr != kNoAddr && spends[in.addr]) d.active -= in.value;
      }
      for (const OutputView& out : tx.outputs) {
        int c = category_of(out.addr);
        if (c >= 0) d.cat[static_cast<std::size_t>(c)] += out.value;
        if (out.addr != kNoAddr && spends[out.addr]) d.active += out.value;
      }
    }
  });

  // Sequential prefix walk over segments emits the series.
  std::array<Amount, kCategoryCount> cat_balance{};
  Amount active = 0;
  Amount minted = 0;
  for (std::size_t k = 0; k < segments.size(); ++k) {
    for (std::size_t c = 0; c < kCategoryCount; ++c)
      cat_balance[c] += deltas[k].cat[c];
    active += deltas[k].active;
    minted += deltas[k].minted;
    series.times.push_back(segments[k].at);
    series.active_supply.push_back(active);
    series.total_supply.push_back(minted);
    for (CategoryTrack& track : series.tracks) {
      Amount b = cat_balance[static_cast<std::size_t>(track.category)];
      track.balance.push_back(b);
      track.pct_active.push_back(
          active > 0 ? 100.0 * static_cast<double>(b) /
                           static_cast<double>(active)
                     : 0.0);
    }
  }
  return series;
}

}  // namespace fist
