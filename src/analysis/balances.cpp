#include "analysis/balances.hpp"

namespace fist {

BalanceSeries category_balances(const ChainView& view,
                                const Clustering& clustering,
                                const ClusterNaming& naming,
                                Timestamp snapshot_interval) {
  BalanceSeries series;
  if (view.tx_count() == 0 || snapshot_interval <= 0) return series;

  // Categories charted in Figure 2, plus mixers for completeness.
  static constexpr Category kTracked[] = {
      Category::BankExchange, Category::Mining,   Category::Wallet,
      Category::Gambling,     Category::Vendor,   Category::FixedExchange,
      Category::Investment,   Category::Mix};
  for (Category c : kTracked)
    series.tracks.push_back(CategoryTrack{c, {}, {}});

  // Category of each cluster (from tags); kCategoryCount = untracked.
  std::vector<std::uint8_t> cluster_cat(clustering.cluster_count(),
                                        static_cast<std::uint8_t>(255));
  for (const auto& [cluster, name] : naming.names())
    cluster_cat[cluster] = static_cast<std::uint8_t>(name.category);

  // Sink addresses: never spend, over the whole observation window.
  std::vector<std::uint8_t> spends(view.address_count(), 0);
  for (const TxView& tx : view.txs())
    for (const InputView& in : tx.inputs)
      if (in.addr != kNoAddr) spends[in.addr] = 1;

  std::array<Amount, kCategoryCount> cat_balance{};
  Amount active = 0;
  Amount minted = 0;

  auto category_of = [&](AddrId a) -> int {
    if (a == kNoAddr) return -1;
    std::uint8_t c = cluster_cat[clustering.cluster_of(a)];
    return c == 255 ? -1 : static_cast<int>(c);
  };

  Timestamp next_snapshot = view.tx(0).time + snapshot_interval;
  auto snapshot = [&](Timestamp at) {
    series.times.push_back(at);
    series.active_supply.push_back(active);
    series.total_supply.push_back(minted);
    for (CategoryTrack& track : series.tracks) {
      Amount b = cat_balance[static_cast<std::size_t>(track.category)];
      track.balance.push_back(b);
      track.pct_active.push_back(
          active > 0 ? 100.0 * static_cast<double>(b) /
                           static_cast<double>(active)
                     : 0.0);
    }
  };

  for (const TxView& tx : view.txs()) {
    while (tx.time >= next_snapshot) {
      snapshot(next_snapshot);
      next_snapshot += snapshot_interval;
    }
    if (tx.coinbase) minted += tx.value_out();
    for (const InputView& in : tx.inputs) {
      int c = category_of(in.addr);
      if (c >= 0) cat_balance[static_cast<std::size_t>(c)] -= in.value;
      if (in.addr != kNoAddr && spends[in.addr]) active -= in.value;
    }
    for (const OutputView& out : tx.outputs) {
      int c = category_of(out.addr);
      if (c >= 0) cat_balance[static_cast<std::size_t>(c)] += out.value;
      if (out.addr != kNoAddr && spends[out.addr]) active += out.value;
    }
  }
  snapshot(next_snapshot);
  return series;
}

}  // namespace fist
