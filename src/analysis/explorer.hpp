// explorer.hpp — entity- and address-level queries.
//
// After clustering + naming, analysts ask entity questions: how big is
// Mt. Gox, what does it hold, who does it transact with, when was it
// active? Explorer answers them over the flattened chain, plus
// address-level balance/history lookups.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chain/view.hpp"
#include "cluster/clustering.hpp"
#include "tag/naming.hpp"

namespace fist {

/// Aggregated profile of one cluster ("entity" = user or service).
struct EntityProfile {
  ClusterId cluster = 0;
  bool named = false;
  std::string service;                 ///< empty for unnamed users
  Category category = Category::User;
  std::size_t addresses = 0;

  Amount received = 0;   ///< lifetime inflow (external only)
  Amount sent = 0;       ///< lifetime outflow (external only)
  Amount balance = 0;    ///< held at end of observation
  std::uint32_t tx_count = 0;  ///< transactions touching the entity
  Timestamp first_seen = 0;
  Timestamp last_seen = 0;

  /// Heaviest counterparties by value, descending.
  std::vector<std::pair<ClusterId, Amount>> top_sources;
  std::vector<std::pair<ClusterId, Amount>> top_destinations;
};

/// One balance-affecting event for a single address.
struct AddressEvent {
  TxIndex tx = kNoTx;
  Timestamp time = 0;
  Amount delta = 0;  ///< positive receipt / negative spend
};

/// Query layer over a clustered chain.
class Explorer {
 public:
  Explorer(const ChainView& view, const Clustering& clustering,
           const ClusterNaming& naming);

  /// Cluster carrying `service`'s name (the largest one if the name
  /// spans several clusters), or nullopt.
  std::optional<ClusterId> find_service(const std::string& service) const;

  /// Full profile of a cluster. `top_n` bounds the counterparty lists.
  EntityProfile profile(ClusterId cluster, std::size_t top_n = 5) const;

  /// Display label for a cluster ("Mt. Gox" or "user#123").
  std::string label(ClusterId cluster) const;

  /// Chronological balance events of one address.
  std::vector<AddressEvent> address_history(AddrId addr) const;

  /// Final balance of one address.
  Amount address_balance(AddrId addr) const;

 private:
  const ChainView* view_;
  const Clustering* clustering_;
  const ClusterNaming* naming_;
};

}  // namespace fist
