#include "encoding/address.hpp"

#include "encoding/base58.hpp"

namespace fist {

std::optional<Address> Address::decode(std::string_view text) noexcept {
  std::optional<Bytes> payload = base58check_decode(text);
  if (!payload || payload->size() != 21) return std::nullopt;
  std::uint8_t version = (*payload)[0];
  AddrType type;
  switch (version) {
    case 0x00: type = AddrType::P2PKH; break;
    case 0x05: type = AddrType::P2SH; break;
    default: return std::nullopt;
  }
  Hash160 h = Hash160::from_bytes(ByteView(payload->data() + 1, 20));
  return Address(type, h);
}

std::string Address::encode() const {
  Bytes versioned;
  versioned.reserve(21);
  versioned.push_back(static_cast<std::uint8_t>(type_));
  append(versioned, payload_.view());
  return base58check_encode(versioned);
}

}  // namespace fist
