// base58.hpp — Base58 and Base58Check, the address wire encodings.
//
// Base58 is Bitcoin's human-facing binary encoding (the 58-character
// alphabet omits 0/O/I/l). Base58Check appends a 4-byte double-SHA256
// checksum before encoding, catching typos in pasted addresses.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace fist {

/// Encodes arbitrary bytes as Base58. Leading zero bytes become leading
/// '1' characters, as in Bitcoin.
std::string base58_encode(ByteView data);

/// Decodes Base58. Throws ParseError on characters outside the alphabet.
Bytes base58_decode(std::string_view text);

/// Base58Check: payload ‖ first-4-bytes(SHA256d(payload)), Base58-encoded.
std::string base58check_encode(ByteView payload);

/// Decodes and checksum-verifies Base58Check. Returns nullopt if the
/// text is malformed or the checksum does not match.
std::optional<Bytes> base58check_decode(std::string_view text) noexcept;

}  // namespace fist
