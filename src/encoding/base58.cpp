#include "encoding/base58.hpp"

#include <algorithm>
#include <array>

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace fist {

namespace {

constexpr char kAlphabet[] =
    "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

// Maps ASCII -> digit value, or -1.
constexpr std::array<int, 128> make_decode_map() {
  std::array<int, 128> map{};
  for (int& v : map) v = -1;
  for (int i = 0; i < 58; ++i)
    map[static_cast<std::size_t>(kAlphabet[i])] = i;
  return map;
}

constexpr std::array<int, 128> kDecode = make_decode_map();

}  // namespace

std::string base58_encode(ByteView data) {
  // Count leading zeros: each maps to a literal '1'.
  std::size_t zeros = 0;
  while (zeros < data.size() && data[zeros] == 0) ++zeros;

  // Big-number base conversion, byte digits -> base58 digits.
  std::vector<std::uint8_t> b58((data.size() - zeros) * 138 / 100 + 1, 0);
  std::size_t length = 0;
  for (std::size_t i = zeros; i < data.size(); ++i) {
    int carry = data[i];
    std::size_t j = 0;
    for (auto it = b58.rbegin();
         (carry != 0 || j < length) && it != b58.rend(); ++it, ++j) {
      carry += 256 * (*it);
      *it = static_cast<std::uint8_t>(carry % 58);
      carry /= 58;
    }
    length = j;
  }

  auto it = b58.begin() + static_cast<std::ptrdiff_t>(b58.size() - length);
  while (it != b58.end() && *it == 0) ++it;

  std::string out(zeros, '1');
  for (; it != b58.end(); ++it) out.push_back(kAlphabet[*it]);
  return out;
}

Bytes base58_decode(std::string_view text) {
  std::size_t zeros = 0;
  while (zeros < text.size() && text[zeros] == '1') ++zeros;

  std::vector<std::uint8_t> b256((text.size() - zeros) * 733 / 1000 + 1, 0);
  std::size_t length = 0;
  for (std::size_t i = zeros; i < text.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    int digit = (c < 128) ? kDecode[c] : -1;
    if (digit < 0) throw ParseError("base58: invalid character");
    int carry = digit;
    std::size_t j = 0;
    for (auto it = b256.rbegin();
         (carry != 0 || j < length) && it != b256.rend(); ++it, ++j) {
      carry += 58 * (*it);
      *it = static_cast<std::uint8_t>(carry % 256);
      carry /= 256;
    }
    length = j;
  }

  auto it = b256.begin() + static_cast<std::ptrdiff_t>(b256.size() - length);
  while (it != b256.end() && *it == 0) ++it;

  Bytes out(zeros, 0x00);
  out.insert(out.end(), it, b256.end());
  return out;
}

std::string base58check_encode(ByteView payload) {
  Sha256::Digest check = sha256d(payload);
  Bytes full = to_bytes(payload);
  full.insert(full.end(), check.begin(), check.begin() + 4);
  return base58_encode(full);
}

std::optional<Bytes> base58check_decode(std::string_view text) noexcept {
  Bytes full;
  try {
    full = base58_decode(text);
  } catch (const ParseError&) {
    return std::nullopt;
  }
  if (full.size() < 4) return std::nullopt;
  ByteView payload(full.data(), full.size() - 4);
  Sha256::Digest check = sha256d(payload);
  if (!std::equal(check.begin(), check.begin() + 4,
                  full.end() - 4))
    return std::nullopt;
  return to_bytes(payload);
}

}  // namespace fist
