// address.hpp — Bitcoin addresses (Base58Check over HASH160 payloads).
//
// Covers the two address kinds in circulation during the paper's study
// window (2009–2013): pay-to-pubkey-hash ("1...") and pay-to-script-hash
// ("3...").
#pragma once

#include <compare>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "crypto/hash.hpp"

namespace fist {

/// Address kind, i.e. the spending condition the payload commits to.
enum class AddrType : std::uint8_t {
  P2PKH = 0x00,  ///< mainnet version byte 0x00, "1..." addresses
  P2SH = 0x05,   ///< mainnet version byte 0x05, "3..." addresses
};

/// A decoded Bitcoin address: version + HASH160 payload.
///
/// Value type; usable as an unordered-container key. Note that in the
/// forensics pipeline addresses are usually interned to dense AddrIds
/// (see chain/addrbook.hpp) — this type is the wire/display form.
class Address {
 public:
  Address() = default;
  Address(AddrType type, const Hash160& payload) noexcept
      : type_(type), payload_(payload) {}

  /// Parses and checksum-verifies a Base58Check address string.
  /// Returns nullopt for malformed text, bad checksums or unknown
  /// version bytes.
  static std::optional<Address> decode(std::string_view text) noexcept;

  /// Renders the Base58Check string ("1..." / "3...").
  std::string encode() const;

  AddrType type() const noexcept { return type_; }
  const Hash160& payload() const noexcept { return payload_; }

  auto operator<=>(const Address&) const noexcept = default;

 private:
  AddrType type_ = AddrType::P2PKH;
  Hash160 payload_;
};

}  // namespace fist

namespace std {
template <>
struct hash<fist::Address> {
  size_t operator()(const fist::Address& a) const noexcept {
    return std::hash<fist::Hash160>()(a.payload()) ^
           (static_cast<size_t>(a.type()) << 56);
  }
};
}  // namespace std
