// utxo.hpp — the unspent-transaction-output set.
//
// ChainState validates spends against this set; the view builder uses
// it to resolve each input back to the address and value it consumes.
#pragma once

#include <optional>
#include <unordered_map>

#include "chain/transaction.hpp"

namespace fist {

/// One unspent output plus the metadata validation needs.
struct Coin {
  Amount value = 0;
  Script script_pubkey;
  std::int32_t height = 0;   ///< block height that created it
  bool coinbase = false;     ///< subject to the maturity rule

  bool operator==(const Coin&) const = default;
};

/// Mutable UTXO set keyed by outpoint.
class UtxoSet {
 public:
  /// Adds a coin. Throws ValidationError if the outpoint already
  /// exists (a BIP30-style duplicate).
  void add(const OutPoint& out, Coin coin);

  /// Looks up a coin without removing it.
  const Coin* find(const OutPoint& out) const noexcept;

  /// Removes and returns the coin, or nullopt if absent.
  std::optional<Coin> spend(const OutPoint& out);

  std::size_t size() const noexcept { return map_.size(); }

  /// Sum of all unspent values (the monetary base).
  Amount total_value() const;

  void reserve(std::size_t n) { map_.reserve(n); }

 private:
  std::unordered_map<OutPoint, Coin> map_;
};

}  // namespace fist
