// block.hpp — blocks and block headers.
//
// Blocks timestamp transactions and chain to their predecessor; the
// header commits to the transaction set via a Merkle root and carries
// the proof-of-work. Serialization matches Bitcoin's wire format.
#pragma once

#include <vector>

#include "chain/transaction.hpp"
#include "crypto/hash.hpp"
#include "util/serialize.hpp"
#include "util/timeutil.hpp"

namespace fist {

/// An 80-byte block header.
struct BlockHeader {
  std::int32_t version = 1;
  Hash256 prev_hash;
  Hash256 merkle_root;
  std::uint32_t time = 0;   ///< unix seconds
  std::uint32_t bits = 0;   ///< compact PoW target
  std::uint32_t nonce = 0;

  void serialize(Writer& w) const;
  static BlockHeader deserialize(Reader& r);

  /// The block hash: SHA256d of the 80 serialized header bytes.
  Hash256 hash() const;

  bool operator==(const BlockHeader&) const = default;
};

/// A block: header plus ordered transactions (first is the coinbase).
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  /// Recomputes the Merkle root from the current transaction list.
  Hash256 compute_merkle_root() const;

  /// Updates header.merkle_root from the transaction list.
  void fix_merkle_root();

  void serialize(Writer& w) const;
  Bytes serialize() const;
  static Block deserialize(Reader& r);
  static Block from_bytes(ByteView raw);

  bool operator==(const Block&) const = default;
};

/// Block subsidy at a given height with the given halving interval
/// (Bitcoin: 50 BTC halving every 210,000 blocks).
Amount block_subsidy(int height, int halving_interval = 210'000) noexcept;

}  // namespace fist
