#include "chain/ingest.hpp"

#include "util/hex.hpp"

namespace fist {

std::string IngestReport::summary() const {
  std::string out;
  for (const Quarantined& q : blocks) {
    out += "quarantined block record " + std::to_string(q.record) + " (" +
           quarantine_stage_name(q.stage) + "): " + q.reason + "\n";
  }
  for (const Quarantined& q : txs) {
    out += "quarantined tx " + to_hex_reversed(q.txid.view()) + " (record " +
           std::to_string(q.record) + ", tx " + std::to_string(q.tx) +
           "): " + q.reason + "\n";
  }
  return out;
}

}  // namespace fist
