// addrbook.hpp — address interning.
//
// The clustering and analysis layers work over millions of addresses;
// comparing 21-byte values everywhere would dominate memory and time.
// AddressBook interns each distinct Address to a dense 32-bit AddrId on
// first sight, and AddrIds are what every downstream structure stores.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/lock_order.hpp"
#include "encoding/address.hpp"

namespace fist {

/// Dense address identifier (assignment order = first appearance order,
/// which several Heuristic-2 conditions rely on).
using AddrId = std::uint32_t;

/// Sentinel for "no address" (e.g. a nonstandard output).
inline constexpr AddrId kNoAddr = 0xffffffffu;

/// Bidirectional Address ⇄ AddrId map.
class AddressBook {
 public:
  /// Interns `addr`, returning its existing or newly assigned id.
  AddrId intern(const Address& addr);

  /// Looks up an already-interned address.
  std::optional<AddrId> find(const Address& addr) const noexcept;

  /// Reverse lookup. Throws UsageError for unknown ids.
  const Address& lookup(AddrId id) const;

  /// Number of distinct interned addresses.
  std::size_t size() const noexcept { return forward_.size(); }

  /// Reserves capacity for an expected address count.
  void reserve(std::size_t n);

 private:
  std::unordered_map<Address, AddrId> index_;
  std::vector<Address> forward_;
};

/// Thread-safe, hash-sharded interning table for the parallel chain
/// flattening pass. Workers intern addresses concurrently into
/// per-shard sub-tables (shard chosen by address hash, so an address
/// always lands in the same shard no matter which worker sees it),
/// each entry tracking the smallest appearance ordinal observed.
/// finalize() then assigns dense AddrIds in ascending first-appearance
/// order — reproducing exactly the ids a sequential first-sight intern
/// would have handed out, independent of thread count or interleaving.
class ShardedAddressBook {
 public:
  /// Provisional handle for an interned address: (shard, slot).
  struct Ref {
    std::uint32_t shard = 0;
    std::uint32_t local = 0;
  };

  /// Dense view produced by finalize().
  struct Finalized {
    AddressBook book;                          ///< ids by first appearance
    std::vector<std::vector<AddrId>> dense;    ///< per-shard slot → AddrId

    AddrId id(Ref ref) const noexcept { return dense[ref.shard][ref.local]; }
  };

  /// `shard_count` is a determinism-neutral tuning knob (the dense ids
  /// do not depend on it); more shards mean less lock contention.
  explicit ShardedAddressBook(std::size_t shard_count = 64);

  /// Interns `addr` observed at `ordinal` — any globally ordered
  /// position key (the chain pass packs (block height, output slot)).
  /// Thread-safe; returns the address's provisional handle.
  Ref intern(const Address& addr, std::uint64_t ordinal);

  /// Distinct addresses across all shards. Takes each shard lock in
  /// turn, so it is safe (though momentarily stale) against concurrent
  /// intern; call between phases for an exact count.
  std::size_t size() const noexcept;

  /// Deterministic merge: orders every entry by first-appearance
  /// ordinal and assigns dense AddrIds in that order.
  Finalized finalize() const;

 private:
  struct Shard {
    mutable Mutex shard_mutex{lockorder::Rank::kAddrBookShard};
    std::unordered_map<Address, std::uint32_t> index  // address → slot
        FIST_GUARDED_BY(shard_mutex);
    std::vector<Address> forward FIST_GUARDED_BY(shard_mutex);
    std::vector<std::uint64_t> first_ordinal FIST_GUARDED_BY(shard_mutex);
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fist
