// addrbook.hpp — address interning.
//
// The clustering and analysis layers work over millions of addresses;
// comparing 21-byte values everywhere would dominate memory and time.
// AddressBook interns each distinct Address to a dense 32-bit AddrId on
// first sight, and AddrIds are what every downstream structure stores.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "encoding/address.hpp"

namespace fist {

/// Dense address identifier (assignment order = first appearance order,
/// which several Heuristic-2 conditions rely on).
using AddrId = std::uint32_t;

/// Sentinel for "no address" (e.g. a nonstandard output).
inline constexpr AddrId kNoAddr = 0xffffffffu;

/// Bidirectional Address ⇄ AddrId map.
class AddressBook {
 public:
  /// Interns `addr`, returning its existing or newly assigned id.
  AddrId intern(const Address& addr);

  /// Looks up an already-interned address.
  std::optional<AddrId> find(const Address& addr) const noexcept;

  /// Reverse lookup. Throws UsageError for unknown ids.
  const Address& lookup(AddrId id) const;

  /// Number of distinct interned addresses.
  std::size_t size() const noexcept { return forward_.size(); }

  /// Reserves capacity for an expected address count.
  void reserve(std::size_t n);

 private:
  std::unordered_map<Address, AddrId> index_;
  std::vector<Address> forward_;
};

}  // namespace fist
