// addrbook.hpp — address interning.
//
// The clustering and analysis layers work over millions of addresses;
// comparing 21-byte values everywhere would dominate memory and time.
// AddressBook interns each distinct Address to a dense 32-bit AddrId on
// first sight, and AddrIds are what every downstream structure stores.
//
// Storage is arena-backed: each distinct address lives exactly once in
// a chunked bump arena (no per-node heap headers, no rehash copies of
// the key bytes), and the hash index maps into the arena with 4-byte
// slots. At paper scale (~12M addresses) this roughly halves interning
// memory versus the former unordered_map + vector pair — the margin
// that keeps the out-of-core chain build (docs/SCALING.md) inside its
// RSS budget.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/lock_order.hpp"
#include "encoding/address.hpp"

namespace fist {

/// Dense address identifier (assignment order = first appearance order,
/// which several Heuristic-2 conditions rely on).
using AddrId = std::uint32_t;

/// Sentinel for "no address" (e.g. a nonstandard output).
inline constexpr AddrId kNoAddr = 0xffffffffu;

namespace detail {

/// Chunked bump storage + open-addressing index for interned
/// addresses. Ids are dense push ordinals; chunks are fixed 16Ki-slot
/// slabs that never move, so reverse lookup is two indexations and
/// growth never copies an Address. The probe table (linear probing,
/// power-of-two capacity, ≤2/3 load) stores only 4-byte slot ids and
/// compares keys against the arena.
class InternTable {
 public:
  struct Result {
    std::uint32_t id = 0;
    bool inserted = false;
  };

  InternTable();

  /// Finds `addr` or appends it with the next dense id.
  Result intern(const Address& addr);

  std::optional<std::uint32_t> find(const Address& addr) const noexcept;

  /// Slot id → address. No bounds check (callers validate).
  const Address& at(std::uint32_t id) const noexcept {
    return chunks_[id >> kChunkShift][id & kChunkMask];
  }

  std::size_t size() const noexcept { return size_; }
  void reserve(std::size_t n);

 private:
  static constexpr std::uint32_t kChunkShift = 14;  ///< 16384 slots/chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  void push(const Address& addr);
  void grow_table(std::size_t capacity);

  std::vector<std::unique_ptr<Address[]>> chunks_;
  std::size_t size_ = 0;
  std::vector<std::uint32_t> table_;  ///< arena slot per probe bucket
  std::size_t mask_ = 0;              ///< table_.size() - 1
};

}  // namespace detail

/// Bidirectional Address ⇄ AddrId map. Move-only (the arena is unique).
class AddressBook {
 public:
  AddressBook() = default;
  AddressBook(AddressBook&&) = default;
  AddressBook& operator=(AddressBook&&) = default;

  /// Interns `addr`, returning its existing or newly assigned id.
  AddrId intern(const Address& addr) { return core_.intern(addr).id; }

  /// Looks up an already-interned address.
  std::optional<AddrId> find(const Address& addr) const noexcept {
    return core_.find(addr);
  }

  /// Reverse lookup. Throws UsageError for unknown ids.
  const Address& lookup(AddrId id) const;

  /// Number of distinct interned addresses.
  std::size_t size() const noexcept { return core_.size(); }

  /// Reserves capacity for an expected address count.
  void reserve(std::size_t n) { core_.reserve(n); }

 private:
  detail::InternTable core_;
};

/// Thread-safe, hash-sharded interning table for the parallel chain
/// flattening pass. Workers intern addresses concurrently into
/// per-shard arena-backed sub-tables (shard chosen by address hash, so
/// an address always lands in the same shard no matter which worker
/// sees it), each entry tracking the smallest appearance ordinal
/// observed. finalize() then assigns dense AddrIds in ascending
/// first-appearance order — reproducing exactly the ids a sequential
/// first-sight intern would have handed out, independent of thread
/// count or interleaving.
class ShardedAddressBook {
 public:
  /// Provisional handle for an interned address: (shard, slot).
  struct Ref {
    std::uint32_t shard = 0;
    std::uint32_t local = 0;
  };

  /// Dense view produced by finalize().
  struct Finalized {
    AddressBook book;                          ///< ids by first appearance
    std::vector<std::vector<AddrId>> dense;    ///< per-shard slot → AddrId

    AddrId id(Ref ref) const noexcept { return dense[ref.shard][ref.local]; }
  };

  /// `shard_count` is a determinism-neutral tuning knob (the dense ids
  /// do not depend on it); more shards mean less lock contention.
  explicit ShardedAddressBook(std::size_t shard_count = 64);

  /// Interns `addr` observed at `ordinal` — any globally ordered
  /// position key (the chain pass packs (block height, output slot)).
  /// Thread-safe; returns the address's provisional handle.
  Ref intern(const Address& addr, std::uint64_t ordinal);

  /// Distinct addresses across all shards. Takes each shard lock in
  /// turn, so it is safe (though momentarily stale) against concurrent
  /// intern; call between phases for an exact count.
  std::size_t size() const noexcept;

  /// Deterministic merge: orders every entry by first-appearance
  /// ordinal and assigns dense AddrIds in that order.
  Finalized finalize() const;

 private:
  struct Shard {
    mutable Mutex shard_mutex{lockorder::Rank::kAddrBookShard};
    detail::InternTable table FIST_GUARDED_BY(shard_mutex);
    std::vector<std::uint64_t> first_ordinal FIST_GUARDED_BY(shard_mutex);
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fist
