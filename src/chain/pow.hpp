// pow.hpp — proof-of-work targets in Bitcoin's compact "nBits" form.
//
// Block headers carry their difficulty target as a 32-bit floating
// style encoding; this module expands it to a 256-bit target and checks
// hashes against it. The simulator mines with easy targets so synthetic
// chains remain honest proof-of-work chains at laptop scale.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/hash.hpp"
#include "crypto/u256.hpp"

namespace fist {

/// Expands a compact nBits encoding to a full 256-bit target.
/// Returns nullopt for negative or overflowing encodings (which Bitcoin
/// treats as invalid).
std::optional<U256> expand_compact(std::uint32_t bits) noexcept;

/// Compresses a 256-bit target to nBits (inverse of expand_compact,
/// up to the encoding's precision).
std::uint32_t to_compact(const U256& target) noexcept;

/// True iff `hash` (interpreted little-endian, as Bitcoin does) is at or
/// below the target encoded by `bits`.
bool check_proof_of_work(const Hash256& hash, std::uint32_t bits) noexcept;

/// Computes the next difficulty target after a retarget period, using
/// Bitcoin's rule: scale the current target by
/// actual_timespan / target_timespan, clamped to [1/4, 4], and clip to
/// `limit` (the minimum-difficulty ceiling). Returns compact bits.
std::uint32_t next_work_required(std::uint32_t current_bits,
                                 std::int64_t actual_timespan,
                                 std::int64_t target_timespan,
                                 std::uint32_t limit_bits) noexcept;

/// A very easy target used by the simulator's miners (every ~256th
/// hash qualifies) so that synthetic mining is cheap but hashes still
/// carry real proof-of-work semantics.
inline constexpr std::uint32_t kEasyBits = 0x207effff;

/// Mainnet's genesis difficulty (0x1d00ffff), for reference and tests.
inline constexpr std::uint32_t kGenesisBits = 0x1d00ffff;

}  // namespace fist
