#include "chain/addrbook.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"

namespace fist {

namespace detail {

InternTable::InternTable() { grow_table(1u << 10); }

void InternTable::push(const Address& addr) {
  std::uint32_t chunk = static_cast<std::uint32_t>(size_) >> kChunkShift;
  if (chunk == chunks_.size())
    chunks_.push_back(std::make_unique<Address[]>(std::size_t{1}
                                                  << kChunkShift));
  chunks_[chunk][size_ & kChunkMask] = addr;
  ++size_;
}

void InternTable::grow_table(std::size_t capacity) {
  table_.assign(capacity, kEmptySlot);
  mask_ = capacity - 1;
  for (std::uint32_t id = 0; id < size_; ++id) {
    std::size_t bucket = std::hash<Address>()(at(id)) & mask_;
    while (table_[bucket] != kEmptySlot) bucket = (bucket + 1) & mask_;
    table_[bucket] = id;
  }
}

InternTable::Result InternTable::intern(const Address& addr) {
  if ((size_ + 1) * 3 > table_.size() * 2) grow_table(table_.size() * 2);
  std::size_t bucket = std::hash<Address>()(addr) & mask_;
  while (table_[bucket] != kEmptySlot) {
    if (at(table_[bucket]) == addr) return Result{table_[bucket], false};
    bucket = (bucket + 1) & mask_;
  }
  std::uint32_t id = static_cast<std::uint32_t>(size_);
  push(addr);
  table_[bucket] = id;
  return Result{id, true};
}

std::optional<std::uint32_t> InternTable::find(
    const Address& addr) const noexcept {
  std::size_t bucket = std::hash<Address>()(addr) & mask_;
  while (table_[bucket] != kEmptySlot) {
    if (at(table_[bucket]) == addr) return table_[bucket];
    bucket = (bucket + 1) & mask_;
  }
  return std::nullopt;
}

void InternTable::reserve(std::size_t n) {
  chunks_.reserve((n >> kChunkShift) + 1);
  std::size_t capacity = table_.size();
  while (n * 3 > capacity * 2) capacity *= 2;
  if (capacity != table_.size()) grow_table(capacity);
}

}  // namespace detail

const Address& AddressBook::lookup(AddrId id) const {
  if (id >= core_.size())
    throw UsageError("AddressBook::lookup: unknown id");
  return core_.at(id);
}

ShardedAddressBook::ShardedAddressBook(std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ShardedAddressBook::Ref ShardedAddressBook::intern(const Address& addr,
                                                   std::uint64_t ordinal) {
  auto shard_index =
      static_cast<std::uint32_t>(std::hash<Address>()(addr) % shards_.size());
  Shard& shard = *shards_[shard_index];
  LockGuard lock(shard.shard_mutex);
  auto [local, inserted] = shard.table.intern(addr);
  if (inserted) {
    // fistlint:allow(alloc-under-lock,unbounded-growth) one slot per
    // interned address, amortized-O(1); the vector shares the intern
    // table's lifetime and is bounded by the address universe, which
    // growing is this class's whole purpose.
    shard.first_ordinal.push_back(ordinal);
  } else if (ordinal < shard.first_ordinal[local]) {
    shard.first_ordinal[local] = ordinal;
  }
  return Ref{shard_index, local};
}

std::size_t ShardedAddressBook::size() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    LockGuard lock(shard->shard_mutex);
    total += shard->table.size();
  }
  return total;
}

ShardedAddressBook::Finalized ShardedAddressBook::finalize() const {
  // Every output slot has a unique ordinal, so ordering by ordinal is a
  // total order: the dense ids below are the sequential intern's ids.
  // Each entry carries its address out of the shard, so the sorted
  // pass below runs with no shard lock held (one lock per shard here,
  // not one per entry there).
  struct Entry {
    std::uint64_t ordinal;
    std::uint32_t shard;
    std::uint32_t local;
    Address addr;
  };
  std::vector<Entry> entries;
  std::vector<std::size_t> shard_sizes(shards_.size(), 0);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    LockGuard lock(shard.shard_mutex);
    std::size_t count = shard.table.size();
    shard_sizes[s] = count;
    for (std::uint32_t l = 0; l < count; ++l)
      // fistlint:allow(alloc-under-lock) snapshot/export path, not
      // ingest; runs once per dump while ingest is quiesced.
      entries.push_back(
          Entry{shard.first_ordinal[l], s, l, shard.table.at(l)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.ordinal < b.ordinal; });

  Finalized out;
  out.book.reserve(entries.size());
  out.dense.resize(shards_.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s)
    out.dense[s].resize(shard_sizes[s], kNoAddr);
  for (const Entry& e : entries)
    out.dense[e.shard][e.local] = out.book.intern(e.addr);
  return out;
}

}  // namespace fist
