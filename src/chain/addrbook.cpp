#include "chain/addrbook.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fist {

AddrId AddressBook::intern(const Address& addr) {
  auto [it, inserted] =
      index_.try_emplace(addr, static_cast<AddrId>(forward_.size()));
  if (inserted) forward_.push_back(addr);
  return it->second;
}

std::optional<AddrId> AddressBook::find(const Address& addr) const noexcept {
  auto it = index_.find(addr);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Address& AddressBook::lookup(AddrId id) const {
  if (id >= forward_.size())
    throw UsageError("AddressBook::lookup: unknown id");
  return forward_[id];
}

void AddressBook::reserve(std::size_t n) {
  index_.reserve(n);
  forward_.reserve(n);
}

ShardedAddressBook::ShardedAddressBook(std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ShardedAddressBook::Ref ShardedAddressBook::intern(const Address& addr,
                                                   std::uint64_t ordinal) {
  auto shard_index =
      static_cast<std::uint32_t>(std::hash<Address>()(addr) % shards_.size());
  Shard& shard = *shards_[shard_index];
  LockGuard lock(shard.shard_mutex);
  auto [it, inserted] = shard.index.try_emplace(
      addr, static_cast<std::uint32_t>(shard.forward.size()));
  if (inserted) {
    shard.forward.push_back(addr);
    shard.first_ordinal.push_back(ordinal);
  } else if (ordinal < shard.first_ordinal[it->second]) {
    shard.first_ordinal[it->second] = ordinal;
  }
  return Ref{shard_index, it->second};
}

std::size_t ShardedAddressBook::size() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    LockGuard lock(shard->shard_mutex);
    total += shard->forward.size();
  }
  return total;
}

ShardedAddressBook::Finalized ShardedAddressBook::finalize() const {
  // Every output slot has a unique ordinal, so ordering by ordinal is a
  // total order: the dense ids below are the sequential intern's ids.
  // Each entry carries its address out of the shard, so the sorted
  // pass below runs with no shard lock held (one lock per shard here,
  // not one per entry there).
  struct Entry {
    std::uint64_t ordinal;
    std::uint32_t shard;
    std::uint32_t local;
    Address addr;
  };
  std::vector<Entry> entries;
  std::vector<std::size_t> shard_sizes(shards_.size(), 0);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    LockGuard lock(shard.shard_mutex);
    shard_sizes[s] = shard.forward.size();
    for (std::uint32_t l = 0; l < shard.forward.size(); ++l)
      entries.push_back(
          Entry{shard.first_ordinal[l], s, l, shard.forward[l]});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.ordinal < b.ordinal; });

  Finalized out;
  out.book.reserve(entries.size());
  out.dense.resize(shards_.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s)
    out.dense[s].resize(shard_sizes[s], kNoAddr);
  for (const Entry& e : entries)
    out.dense[e.shard][e.local] = out.book.intern(e.addr);
  return out;
}

}  // namespace fist
