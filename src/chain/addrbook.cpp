#include "chain/addrbook.hpp"

#include "util/error.hpp"

namespace fist {

AddrId AddressBook::intern(const Address& addr) {
  auto [it, inserted] =
      index_.try_emplace(addr, static_cast<AddrId>(forward_.size()));
  if (inserted) forward_.push_back(addr);
  return it->second;
}

std::optional<AddrId> AddressBook::find(const Address& addr) const noexcept {
  auto it = index_.find(addr);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Address& AddressBook::lookup(AddrId id) const {
  if (id >= forward_.size())
    throw UsageError("AddressBook::lookup: unknown id");
  return forward_[id];
}

void AddressBook::reserve(std::size_t n) {
  index_.reserve(n);
  forward_.reserve(n);
}

}  // namespace fist
