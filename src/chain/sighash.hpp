// sighash.hpp — legacy signature-hash computation (SIGHASH_ALL family).
//
// ECDSA signatures in scriptSigs commit to a transformed serialization
// of the spending transaction; this module reproduces Bitcoin's original
// (pre-segwit) algorithm so the library can create and verify real
// P2PKH spends end-to-end.
#pragma once

#include <cstdint>

#include "chain/transaction.hpp"
#include "crypto/ecdsa.hpp"

namespace fist {

/// Signature-hash type flags (the legacy repertoire).
enum class SigHashType : std::uint32_t {
  All = 0x01,     ///< commit to all inputs and outputs (the 2013 default)
  None = 0x02,    ///< commit to no outputs ("blank check")
  Single = 0x03,  ///< commit only to the same-index output
};

/// OR-able modifier: commit only to the signed input.
inline constexpr std::uint32_t kSigHashAnyoneCanPay = 0x80;

/// Base type of a (possibly modifier-carrying) hashtype byte.
constexpr SigHashType sighash_base(std::uint32_t hashtype) noexcept {
  return static_cast<SigHashType>(hashtype & 0x1f);
}

/// True if the hashtype carries ANYONECANPAY.
constexpr bool sighash_anyone_can_pay(std::uint32_t hashtype) noexcept {
  return (hashtype & kSigHashAnyoneCanPay) != 0;
}

/// Computes the digest an input's signature commits to, following the
/// original (pre-segwit) algorithm including the NONE/SINGLE variants
/// and the ANYONECANPAY modifier. `script_code` is the scriptPubKey of
/// the output being spent. Throws UsageError if `input_index` is out of
/// range. Reproduces the historical "SIGHASH_SINGLE with no matching
/// output" quirk by returning the well-known one-hash digest.
Hash256 signature_hash(const Transaction& tx, std::size_t input_index,
                       const Script& script_code, SigHashType type);

/// As above but takes the raw hashtype byte (base | modifiers).
Hash256 signature_hash_raw(const Transaction& tx, std::size_t input_index,
                           const Script& script_code,
                           std::uint32_t hashtype);

/// Signs input `input_index` of `tx` (spending a P2PKH output locked to
/// `key`'s uncompressed-pubkey hash when `compressed` is false) and
/// returns the full scriptSig: <DER-sig ‖ hashtype> <pubkey>.
Script sign_p2pkh_input(const Transaction& tx, std::size_t input_index,
                        const Script& spent_script_pubkey,
                        const PrivateKey& key, bool compressed = true);

/// Verifies a P2PKH spend: checks the pubkey hashes to the script's
/// payload and the DER signature validates over the sighash.
bool verify_p2pkh_input(const Transaction& tx, std::size_t input_index,
                        const Script& spent_script_pubkey) noexcept;

}  // namespace fist
