// blockstore.hpp — raw block storage in Bitcoin Core's blk-file format.
//
// Each record is: 4-byte network magic, 4-byte length (LE), raw block.
// The simulator writes chains through this store and the forensics
// pipeline re-reads them, so the two sides only share bytes — the same
// information position an analyst has against the real chain.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <vector>

#include "chain/block.hpp"

namespace fist {

/// Mainnet's record magic (0xf9beb4d9 on the wire).
inline constexpr std::uint32_t kMainnetMagic = 0xd9b4bef9u;

/// Abstract append-only block record store.
class BlockStore {
 public:
  virtual ~BlockStore() = default;

  /// Appends a block; returns its record index.
  virtual std::size_t append(const Block& block) = 0;

  /// Reads record `index`. Throws UsageError if out of range and
  /// ParseError if the record bytes are malformed.
  virtual Block read(std::size_t index) const = 0;

  /// Number of stored records.
  virtual std::size_t count() const noexcept = 0;

  /// Invokes `fn` for every stored block, in append order.
  void for_each(const std::function<void(std::size_t, const Block&)>& fn) const;
};

/// Keeps the serialized records in RAM. Fast default for experiments.
class MemoryBlockStore final : public BlockStore {
 public:
  std::size_t append(const Block& block) override;
  Block read(std::size_t index) const override;
  std::size_t count() const noexcept override { return offsets_.size(); }

  /// Total serialized bytes (records incl. framing).
  std::size_t byte_size() const noexcept { return data_.size(); }

 private:
  Bytes data_;
  std::vector<std::pair<std::size_t, std::size_t>> offsets_;  // (pos, len)
};

/// Writes records to a single blk-style file on disk and reads them
/// back; the on-disk layout is exactly Bitcoin Core's.
class FileBlockStore final : public BlockStore {
 public:
  /// Opens (creating if needed) `path`; scans existing records so a
  /// store can be reopened across runs.
  explicit FileBlockStore(std::filesystem::path path,
                          std::uint32_t magic = kMainnetMagic);

  std::size_t append(const Block& block) override;
  Block read(std::size_t index) const override;
  std::size_t count() const noexcept override { return offsets_.size(); }

  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
  std::uint32_t magic_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> offsets_;  // (pos, len)
};

}  // namespace fist
