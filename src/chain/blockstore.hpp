// blockstore.hpp — raw block storage in Bitcoin Core's blk-file format.
//
// Each record is: 4-byte network magic, 4-byte length (LE), raw block.
// The simulator writes chains through this store and the forensics
// pipeline re-reads them, so the two sides only share bytes — the same
// information position an analyst has against the real chain.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <vector>

#include "chain/block.hpp"
#include "core/lock_order.hpp"

namespace fist {

/// Mainnet's record magic (0xf9beb4d9 on the wire).
inline constexpr std::uint32_t kMainnetMagic = 0xd9b4bef9u;

/// Abstract append-only block record store.
class BlockStore {
 public:
  virtual ~BlockStore() = default;

  /// Appends a block; returns its record index.
  virtual std::size_t append(const Block& block) = 0;

  /// Reads record `index`. Throws UsageError if out of range and
  /// ParseError if the record bytes are malformed.
  virtual Block read(std::size_t index) const = 0;

  /// Number of stored records.
  virtual std::size_t count() const noexcept = 0;

  /// Invokes `fn` for every stored block, in append order.
  void for_each(const std::function<void(std::size_t, const Block&)>& fn) const;
};

/// Keeps the serialized records in RAM. Fast default for experiments.
class MemoryBlockStore final : public BlockStore {
 public:
  std::size_t append(const Block& block) override;
  Block read(std::size_t index) const override;
  std::size_t count() const noexcept override { return offsets_.size(); }

  /// Total serialized bytes (records incl. framing).
  std::size_t byte_size() const noexcept { return data_.size(); }

  /// Raw serialized image (records incl. framing) — the byte-identity
  /// oracle for the streaming-generation differential tests.
  const Bytes& bytes() const noexcept { return data_; }

 private:
  Bytes data_;
  std::vector<std::pair<std::size_t, std::size_t>> offsets_;  // (pos, len)
};

/// Writes records to a single blk-style file on disk and reads them
/// back; the on-disk layout is exactly Bitcoin Core's. Alongside the
/// data file the store maintains a checksum sidecar (`<path>.sums`,
/// one 8-byte truncated SHA-256d per record payload) so silent payload
/// corruption is caught at read time, and the opening scan detects the
/// torn tail an interrupted append leaves behind (the partial record
/// is dropped and physically truncated away before the next append).
class FileBlockStore final : public BlockStore {
 public:
  /// Recovery behaviour of the opening scan and of reads.
  struct OpenOptions {
    /// Resync past corrupt record framing (bad magic, absurd length)
    /// by scanning forward for the next record boundary, instead of
    /// throwing ParseError. Skipped byte ranges land in scan_report().
    bool recover = false;
    /// Verify the checksum sidecar on every read() when available.
    bool verify_checksums = true;
  };

  /// What the opening scan found beyond clean records.
  struct ScanReport {
    /// Trailing bytes of an interrupted append (dropped; the next
    /// append truncates them away).
    std::uint64_t torn_tail_bytes = 0;
    /// Byte ranges [begin, end) skipped while resyncing (recover mode).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> skipped_ranges;
    std::uint64_t skipped_bytes() const noexcept {
      std::uint64_t total = 0;
      for (auto& [b, e] : skipped_ranges) total += e - b;
      return total;
    }
    bool clean() const noexcept {
      return torn_tail_bytes == 0 && skipped_ranges.empty();
    }
  };

  /// Opens (creating if needed) `path`; scans existing records so a
  /// store can be reopened across runs.
  explicit FileBlockStore(std::filesystem::path path,
                          std::uint32_t magic = kMainnetMagic);
  FileBlockStore(std::filesystem::path path, std::uint32_t magic,
                 const OpenOptions& options);

  std::size_t append(const Block& block) override;
  Block read(std::size_t index) const override;
  std::size_t count() const noexcept override { return offsets_.size(); }

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Sidecar path (`<path>.sums`).
  std::filesystem::path sums_path() const { return path_.string() + ".sums"; }

  /// What the opening scan recovered around (empty for a clean file).
  const ScanReport& scan_report() const noexcept { return scan_; }

  /// True when reads are covered by per-record checksums.
  bool checksummed() const noexcept { return have_sums_; }

 private:
  /// Reads the raw payload of record `index` through a cached handle.
  Bytes read_payload(std::size_t index) const;
  void load_or_heal_sums();

  std::filesystem::path path_;
  std::uint32_t magic_;
  OpenOptions options_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> offsets_;  // (pos, len)
  std::vector<std::array<std::uint8_t, 8>> sums_;  // per-record checksums
  bool have_sums_ = false;
  std::uint64_t data_end_ = 0;    ///< end offset of the last valid record
  bool needs_truncate_ = false;   ///< torn tail present; fix before append
  ScanReport scan_;

  /// Cached read handles: reads are served through a small pool of
  /// per-slot ifstreams (slot picked by thread) so the recovery scan
  /// and sequential re-reads don't pay a per-record open, while the
  /// parallel chain scan still reads concurrently.
  struct ReadSlot {
    Mutex slot_mutex{lockorder::Rank::kBlockstoreReadSlot};
    std::ifstream in FIST_GUARDED_BY(slot_mutex);
  };
  static constexpr std::size_t kReadSlots = 8;
  mutable std::array<ReadSlot, kReadSlots> read_slots_;
};

}  // namespace fist
