#include "chain/sighash.hpp"

#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist {

Hash256 signature_hash(const Transaction& tx, std::size_t input_index,
                       const Script& script_code, SigHashType type) {
  return signature_hash_raw(tx, input_index, script_code,
                            static_cast<std::uint32_t>(type));
}

Hash256 signature_hash_raw(const Transaction& tx, std::size_t input_index,
                           const Script& script_code,
                           std::uint32_t hashtype) {
  if (input_index >= tx.inputs.size())
    throw UsageError("signature_hash: input index out of range");

  SigHashType base = sighash_base(hashtype);

  // The historical SIGHASH_SINGLE bug: with no output at the input's
  // index, old clients signed the digest 0x0000...01 — and anything
  // verifies against it. Reproduced faithfully (it is part of the
  // consensus surface this library models).
  if (base == SigHashType::Single && input_index >= tx.outputs.size()) {
    Hash256 one;
    one.data()[0] = 0x01;
    return one;
  }

  // Legacy algorithm: serialize a transformed copy, append the raw
  // hashtype, double-SHA256.
  Transaction copy = tx;
  for (TxIn& in : copy.inputs) in.script_sig = Script();
  copy.inputs[input_index].script_sig = script_code;

  if (base == SigHashType::None) {
    copy.outputs.clear();
    // Other inputs' sequences zeroed so they stay malleable.
    for (std::size_t i = 0; i < copy.inputs.size(); ++i)
      if (i != input_index) copy.inputs[i].sequence = 0;
  } else if (base == SigHashType::Single) {
    copy.outputs.resize(input_index + 1);
    // Earlier outputs become "null": value -1, empty script.
    for (std::size_t i = 0; i < input_index; ++i)
      copy.outputs[i] = TxOut{-1, Script()};
    for (std::size_t i = 0; i < copy.inputs.size(); ++i)
      if (i != input_index) copy.inputs[i].sequence = 0;
  }

  if (sighash_anyone_can_pay(hashtype)) {
    TxIn only = copy.inputs[input_index];
    copy.inputs.clear();
    copy.inputs.push_back(std::move(only));
  }

  // Serialize by hand: the transformed tx may violate Transaction's
  // own invariants (empty outputs under NONE), which serialize() allows
  // but from_bytes would reject — exactly like the original client.
  Writer w;
  copy.serialize(w);
  w.u32le(hashtype);
  return hash256(w.view());
}

Script sign_p2pkh_input(const Transaction& tx, std::size_t input_index,
                        const Script& spent_script_pubkey,
                        const PrivateKey& key, bool compressed) {
  Hash256 digest =
      signature_hash(tx, input_index, spent_script_pubkey, SigHashType::All);
  Signature sig = ecdsa_sign(key, digest);
  Bytes sig_bytes = sig.der();
  sig_bytes.push_back(static_cast<std::uint8_t>(SigHashType::All));
  PublicKey pub = key.pubkey();
  Bytes pub_bytes =
      compressed ? pub.serialize_compressed() : pub.serialize_uncompressed();
  return make_p2pkh_scriptsig(sig_bytes, pub_bytes);
}

bool verify_p2pkh_input(const Transaction& tx, std::size_t input_index,
                        const Script& spent_script_pubkey) noexcept {
  try {
    if (input_index >= tx.inputs.size()) return false;
    Classified spent = classify(spent_script_pubkey);
    if (spent.type != ScriptType::P2PKH) return false;

    auto ops = tx.inputs[input_index].script_sig.ops_checked();
    if (!ops || ops->size() != 2) return false;
    const Bytes& sig_with_type = (*ops)[0].push;
    const Bytes& pub_bytes = (*ops)[1].push;
    if (sig_with_type.size() < 2) return false;
    if (sig_with_type.back() != static_cast<std::uint8_t>(SigHashType::All))
      return false;

    if (hash160(pub_bytes) != spent.hash) return false;

    PublicKey pub = PublicKey::parse(pub_bytes);
    Signature sig = Signature::from_der(
        ByteView(sig_with_type.data(), sig_with_type.size() - 1));
    Hash256 digest = signature_hash(tx, input_index, spent_script_pubkey,
                                    SigHashType::All);
    return ecdsa_verify(pub, digest, sig);
  } catch (const Error&) {
    return false;
  }
}

}  // namespace fist
