#include "chain/utxo.hpp"

#include "util/error.hpp"

namespace fist {

void UtxoSet::add(const OutPoint& out, Coin coin) {
  auto [it, inserted] = map_.try_emplace(out, std::move(coin));
  if (!inserted)
    throw ValidationError("utxo: duplicate outpoint " + out.txid.hex() + ":" +
                          std::to_string(out.index));
}

const Coin* UtxoSet::find(const OutPoint& out) const noexcept {
  auto it = map_.find(out);
  return it == map_.end() ? nullptr : &it->second;
}

std::optional<Coin> UtxoSet::spend(const OutPoint& out) {
  auto it = map_.find(out);
  if (it == map_.end()) return std::nullopt;
  Coin c = std::move(it->second);
  map_.erase(it);
  return c;
}

Amount UtxoSet::total_value() const {
  Amount total = 0;
  // fistlint:allow(unordered-iter) commutative integer sum (add_money
  // checks the final total's range; every partial-sum order overflows
  // identically or not at all for in-range values)
  for (const auto& [out, coin] : map_) total = add_money(total, coin.value);
  return total;
}

}  // namespace fist
