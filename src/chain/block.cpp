#include "chain/block.hpp"

#include "crypto/merkle.hpp"
#include "util/error.hpp"

namespace fist {

void BlockHeader::serialize(Writer& w) const {
  w.i32le(version);
  w.bytes(prev_hash.view());
  w.bytes(merkle_root.view());
  w.u32le(time);
  w.u32le(bits);
  w.u32le(nonce);
}

BlockHeader BlockHeader::deserialize(Reader& r) {
  BlockHeader h;
  h.version = r.i32le();
  h.prev_hash = Hash256::from_bytes(r.bytes(32));
  h.merkle_root = Hash256::from_bytes(r.bytes(32));
  h.time = r.u32le();
  h.bits = r.u32le();
  h.nonce = r.u32le();
  return h;
}

Hash256 BlockHeader::hash() const {
  Writer w;
  w.reserve(80);
  serialize(w);
  return hash256(w.view());
}

Hash256 Block::compute_merkle_root() const {
  std::vector<Hash256> txids;
  txids.reserve(transactions.size());
  for (const Transaction& tx : transactions) txids.push_back(tx.txid());
  return merkle_root(txids);
}

void Block::fix_merkle_root() { header.merkle_root = compute_merkle_root(); }

void Block::serialize(Writer& w) const {
  header.serialize(w);
  w.varint(transactions.size());
  for (const Transaction& tx : transactions) tx.serialize(w);
}

Bytes Block::serialize() const {
  Writer w;
  serialize(w);
  return w.take();
}

Block Block::deserialize(Reader& r) {
  Block b;
  b.header = BlockHeader::deserialize(r);
  std::uint64_t n = r.varint();
  if (n > 1'000'000) throw ParseError("block: absurd tx count");
  b.transactions.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    b.transactions.push_back(Transaction::deserialize(r));
  return b;
}

Block Block::from_bytes(ByteView raw) {
  Reader r(raw);
  Block b = deserialize(r);
  r.expect_eof();
  return b;
}

Amount block_subsidy(int height, int halving_interval) noexcept {
  if (height < 0) return 0;
  int halvings = height / halving_interval;
  if (halvings >= 64) return 0;
  Amount subsidy = 50 * kCoin;
  return subsidy >> halvings;
}

}  // namespace fist
