// ingest.hpp — recovery policy and quarantine bookkeeping for chain
// ingest.
//
// Raw blk-file bytes scraped off a live network are adversarial,
// truncated, and partially corrupt in practice. Strict ingest (the
// default, and the historical behaviour) aborts on the first bad
// record; lenient ingest isolates malformed records into a quarantine
// list and keeps going, with the invariant that the surviving output
// is bit-identical to a run over a store containing only the intact
// records — and that a zero-fault lenient run is bit-identical to a
// strict run, at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/hash.hpp"

namespace fist {

/// What ingest does when a record cannot be used.
enum class RecoveryPolicy {
  Strict,   ///< throw on the first fault (historical behaviour)
  Lenient,  ///< quarantine the record and continue
};

inline const char* recovery_policy_name(RecoveryPolicy p) noexcept {
  return p == RecoveryPolicy::Strict ? "strict" : "lenient";
}

/// One quarantined unit of work.
struct Quarantined {
  /// Where in the ingest path the fault struck.
  enum class Stage {
    Read,     ///< block record I/O failed (IoError)
    Decode,   ///< block record bytes malformed (ParseError)
    Resolve,  ///< transaction references missing/spent outputs
  };

  Stage stage = Stage::Read;
  std::uint64_t record = 0;  ///< block record index in the store
  std::uint32_t tx = 0;      ///< tx ordinal within the block (Resolve only)
  Hash256 txid;              ///< null unless Resolve
  std::string reason;
};

inline const char* quarantine_stage_name(Quarantined::Stage s) noexcept {
  switch (s) {
    case Quarantined::Stage::Read: return "read";
    case Quarantined::Stage::Decode: return "decode";
    case Quarantined::Stage::Resolve: return "resolve";
  }
  return "?";
}

/// Everything lenient ingest set aside. Deterministic: the same store
/// and fault configuration produce the same report at any thread
/// count (blocks in record order, transactions in chain order).
struct IngestReport {
  RecoveryPolicy policy = RecoveryPolicy::Strict;
  std::vector<Quarantined> blocks;  ///< Read/Decode failures
  std::vector<Quarantined> txs;     ///< Resolve failures

  bool quarantined() const noexcept { return !blocks.empty() || !txs.empty(); }
  std::size_t total() const noexcept { return blocks.size() + txs.size(); }

  /// Per-record human-readable lines ("quarantined block 5 (decode): ...").
  std::string summary() const;
};

}  // namespace fist
