#include "chain/blockstore.hpp"

#include <fstream>
#include <functional>

#include "util/error.hpp"

namespace fist {

void BlockStore::for_each(
    const std::function<void(std::size_t, const Block&)>& fn) const {
  for (std::size_t i = 0; i < count(); ++i) {
    Block b = read(i);
    fn(i, b);
  }
}

std::size_t MemoryBlockStore::append(const Block& block) {
  Bytes raw = block.serialize();
  Writer w;
  w.u32le(kMainnetMagic);
  w.u32le(static_cast<std::uint32_t>(raw.size()));
  std::size_t pos = data_.size();
  Bytes frame = w.take();
  data_.insert(data_.end(), frame.begin(), frame.end());
  data_.insert(data_.end(), raw.begin(), raw.end());
  offsets_.emplace_back(pos + 8, raw.size());
  return offsets_.size() - 1;
}

Block MemoryBlockStore::read(std::size_t index) const {
  if (index >= offsets_.size())
    throw UsageError("MemoryBlockStore::read: index out of range");
  auto [pos, len] = offsets_[index];
  return Block::from_bytes(ByteView(data_.data() + pos, len));
}

FileBlockStore::FileBlockStore(std::filesystem::path path,
                               std::uint32_t magic)
    : path_(std::move(path)), magic_(magic) {
  // Scan any existing records so appends continue a previous session.
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;
  std::uint64_t pos = 0;
  for (;;) {
    std::uint8_t head[8];
    in.read(reinterpret_cast<char*>(head), 8);
    if (in.gcount() != 8) break;
    std::uint32_t m = static_cast<std::uint32_t>(head[0]) |
                      (static_cast<std::uint32_t>(head[1]) << 8) |
                      (static_cast<std::uint32_t>(head[2]) << 16) |
                      (static_cast<std::uint32_t>(head[3]) << 24);
    std::uint32_t len = static_cast<std::uint32_t>(head[4]) |
                        (static_cast<std::uint32_t>(head[5]) << 8) |
                        (static_cast<std::uint32_t>(head[6]) << 16) |
                        (static_cast<std::uint32_t>(head[7]) << 24);
    if (m != magic_) throw ParseError("blk file: bad record magic");
    offsets_.emplace_back(pos + 8, len);
    pos += 8 + len;
    in.seekg(static_cast<std::streamoff>(pos));
    if (!in) break;
  }
}

std::size_t FileBlockStore::append(const Block& block) {
  Bytes raw = block.serialize();
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) throw UsageError("FileBlockStore: cannot open for append");
  std::uint64_t pos = std::filesystem::exists(path_)
                          ? std::filesystem::file_size(path_)
                          : 0;
  Writer w;
  w.u32le(magic_);
  w.u32le(static_cast<std::uint32_t>(raw.size()));
  Bytes frame = w.take();
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  out.write(reinterpret_cast<const char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
  out.flush();
  if (!out) throw UsageError("FileBlockStore: write failed");
  offsets_.emplace_back(pos + 8, static_cast<std::uint32_t>(raw.size()));
  return offsets_.size() - 1;
}

Block FileBlockStore::read(std::size_t index) const {
  if (index >= offsets_.size())
    throw UsageError("FileBlockStore::read: index out of range");
  auto [pos, len] = offsets_[index];
  std::ifstream in(path_, std::ios::binary);
  if (!in) throw UsageError("FileBlockStore: cannot open for read");
  in.seekg(static_cast<std::streamoff>(pos));
  Bytes raw(len);
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(len));
  if (in.gcount() != static_cast<std::streamsize>(len))
    throw ParseError("blk file: truncated record");
  return Block::from_bytes(raw);
}

}  // namespace fist
