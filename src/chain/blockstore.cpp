#include "chain/blockstore.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <thread>

#include "core/fault.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace fist {

namespace {

/// Sanity ceiling on a record length prefix: anything larger is
/// treated as corrupt framing, not an actual 4-GiB block.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

std::uint32_t read_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::array<std::uint8_t, 8> payload_sum(ByteView payload) noexcept {
  Sha256::Digest d = sha256d(payload);
  std::array<std::uint8_t, 8> out;
  std::memcpy(out.data(), d.data(), out.size());
  return out;
}

}  // namespace

void BlockStore::for_each(
    const std::function<void(std::size_t, const Block&)>& fn) const {
  for (std::size_t i = 0; i < count(); ++i) {
    Block b = read(i);
    fn(i, b);
  }
}

std::size_t MemoryBlockStore::append(const Block& block) {
  Bytes raw = block.serialize();
  Writer w;
  w.u32le(kMainnetMagic);
  w.u32le(static_cast<std::uint32_t>(raw.size()));
  std::size_t pos = data_.size();
  Bytes frame = w.take();
  data_.insert(data_.end(), frame.begin(), frame.end());
  data_.insert(data_.end(), raw.begin(), raw.end());
  offsets_.emplace_back(pos + 8, raw.size());
  return offsets_.size() - 1;
}

Block MemoryBlockStore::read(std::size_t index) const {
  if (index >= offsets_.size())
    throw UsageError("MemoryBlockStore::read: index out of range");
  auto [pos, len] = offsets_[index];
  return Block::from_bytes(ByteView(data_.data() + pos, len));
}

FileBlockStore::FileBlockStore(std::filesystem::path path, std::uint32_t magic)
    : FileBlockStore(std::move(path), magic, OpenOptions{}) {}

FileBlockStore::FileBlockStore(std::filesystem::path path, std::uint32_t magic,
                               const OpenOptions& options)
    : path_(std::move(path)), magic_(magic), options_(options) {
  std::error_code ec;
  std::uint64_t fsize = std::filesystem::file_size(path_, ec);
  if (ec) fsize = 0;  // not created yet: empty store
  std::ifstream in(path_, std::ios::binary);
  if (fsize > 0 && !in)
    throw IoError("FileBlockStore: cannot open " + path_.string() +
                  " for scan");

  // Scan existing records so appends continue a previous session. The
  // clean path touches headers only; corrupt framing either throws
  // (strict) or resyncs forward to the next record boundary (recover).
  std::uint64_t pos = 0;
  while (pos < fsize) {
    if (pos + 8 > fsize) {  // partial header: torn tail
      scan_.torn_tail_bytes = fsize - pos;
      break;
    }
    std::uint8_t head[8];
    in.clear();
    in.seekg(static_cast<std::streamoff>(pos));
    in.read(reinterpret_cast<char*>(head), 8);
    if (in.gcount() != 8)
      throw IoError("FileBlockStore: short header read at offset " +
                    std::to_string(pos));
    std::uint32_t m = read_u32le(head);
    std::uint32_t len = read_u32le(head + 4);
    if (m != magic_ || len > kMaxRecordBytes) {
      if (!options_.recover)
        throw ParseError("blk file: bad record magic at offset " +
                         std::to_string(pos));
      // Resync: scan forward for the next occurrence of the magic.
      std::uint8_t want[4];
      want[0] = static_cast<std::uint8_t>(magic_);
      want[1] = static_cast<std::uint8_t>(magic_ >> 8);
      want[2] = static_cast<std::uint8_t>(magic_ >> 16);
      want[3] = static_cast<std::uint8_t>(magic_ >> 24);
      std::uint64_t next = pos + 1;
      bool found = false;
      std::uint8_t buf[4096];
      while (next + 4 <= fsize) {
        std::size_t want_bytes = static_cast<std::size_t>(
            std::min<std::uint64_t>(sizeof(buf), fsize - next));
        in.clear();
        in.seekg(static_cast<std::streamoff>(next));
        in.read(reinterpret_cast<char*>(buf), static_cast<std::streamsize>(
                                                  want_bytes));
        std::size_t got = static_cast<std::size_t>(in.gcount());
        if (got < 4) break;
        for (std::size_t i = 0; i + 4 <= got; ++i) {
          if (std::memcmp(buf + i, want, 4) == 0) {
            next += i;
            found = true;
            break;
          }
        }
        if (found) break;
        next += got - 3;  // keep a 3-byte overlap across chunks
      }
      if (!found) {
        scan_.skipped_ranges.emplace_back(pos, fsize);
        pos = fsize;
        break;
      }
      scan_.skipped_ranges.emplace_back(pos, next);
      pos = next;
      continue;
    }
    if (pos + 8 + len > fsize) {  // header fine, payload short: torn tail
      scan_.torn_tail_bytes = fsize - pos;
      break;
    }
    offsets_.emplace_back(pos + 8, len);
    pos += 8 + len;
    data_end_ = pos;
  }
  // Any trailing bytes past the last valid record — a torn tail or a
  // trailing unresynced range — get truncated away before an append so
  // the file stays a clean prefix of records.
  needs_truncate_ = data_end_ < fsize;
  in.close();
  load_or_heal_sums();
}

void FileBlockStore::load_or_heal_sums() {
  std::error_code ec;
  std::filesystem::path sp = sums_path();
  bool exists = std::filesystem::exists(sp, ec) && !ec;
  if (!exists) {
    // A brand-new store starts a sidecar; a legacy file without one
    // keeps working, just without read verification.
    have_sums_ = offsets_.empty();
    if (have_sums_) {
      std::ofstream make(sp, std::ios::binary | std::ios::trunc);
      if (!make) have_sums_ = false;
    }
    return;
  }
  // After a resync the sidecar's entries no longer line up with the
  // surviving records, so verification would reject intact data: fall
  // back to unverified reads rather than lie.
  if (!scan_.skipped_ranges.empty()) {
    have_sums_ = false;
    return;
  }
  std::ifstream in(sp, std::ios::binary);
  if (!in) {
    have_sums_ = false;
    return;
  }
  std::uint64_t ssize = std::filesystem::file_size(sp, ec);
  if (ec) ssize = 0;
  std::size_t entries = static_cast<std::size_t>(ssize / 8);
  if (entries > offsets_.size()) entries = offsets_.size();  // data torn
  sums_.resize(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    in.read(reinterpret_cast<char*>(sums_[i].data()), 8);
    if (in.gcount() != 8) {
      sums_.resize(i);
      break;
    }
  }
  have_sums_ = true;
  // Self-heal: a crash between the data flush and the sidecar write
  // leaves the sidecar a few entries short — recompute the missing
  // tail from the payloads and rewrite the sidecar atomically enough
  // (truncate + full rewrite keeps entries aligned).
  if (sums_.size() != offsets_.size() || ssize != offsets_.size() * 8) {
    for (std::size_t i = sums_.size(); i < offsets_.size(); ++i)
      sums_.push_back(payload_sum(read_payload(i)));
    std::ofstream out(sp, std::ios::binary | std::ios::trunc);
    if (!out) {
      have_sums_ = false;
      return;
    }
    for (const auto& s : sums_)
      out.write(reinterpret_cast<const char*>(s.data()), 8);
    out.flush();
    if (!out) have_sums_ = false;
  }
}

std::size_t FileBlockStore::append(const Block& block) {
  std::size_t index = offsets_.size();
  if (fault::fire("blockstore.append", index))
    throw IoError("fault injected: blockstore.append (record " +
                  std::to_string(index) + ")");
  // Crash-safety: an interrupted append left a torn tail after the
  // last valid record; physically drop it so the file stays a clean
  // prefix of records.
  if (needs_truncate_) {
    std::error_code ec;
    std::filesystem::resize_file(path_, data_end_, ec);
    if (ec)
      throw IoError("FileBlockStore: cannot truncate torn tail of " +
                    path_.string());
    needs_truncate_ = false;
  }
  Bytes raw = block.serialize();
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out)
    throw IoError("FileBlockStore: cannot open " + path_.string() +
                  " for append");
  Writer w;
  w.u32le(magic_);
  w.u32le(static_cast<std::uint32_t>(raw.size()));
  Bytes frame = w.take();
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  out.write(reinterpret_cast<const char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
  out.flush();
  if (!out)
    throw IoError("FileBlockStore: write failed on " + path_.string());
  offsets_.emplace_back(data_end_ + 8, static_cast<std::uint32_t>(raw.size()));
  data_end_ += 8 + raw.size();
  if (have_sums_) {
    sums_.push_back(payload_sum(raw));
    std::ofstream sout(sums_path(), std::ios::binary | std::ios::app);
    if (sout) {
      sout.write(reinterpret_cast<const char*>(sums_.back().data()), 8);
      sout.flush();
    }
    if (!sout) have_sums_ = false;  // degrade: data is intact, sums aren't
  }
  return index;
}

Bytes FileBlockStore::read_payload(std::size_t index) const {
  auto [pos, len] = offsets_[index];
  // Slot picked by thread so concurrent readers (the parallel chain
  // scan) don't serialize on one handle.
  std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kReadSlots;
  ReadSlot& rs = read_slots_[slot];
  // slot_mutex exists to serialize IO on this slot's stream; holding it
  // across the reads below is its entire job, and contention is rare
  // because slots are picked by thread id.
  LockGuard lock(rs.slot_mutex);
  if (!rs.in.is_open()) {
    // fistlint:allow(blocking-under-lock) see slot_mutex comment above
    rs.in.open(path_, std::ios::binary);
    if (!rs.in)
      throw IoError("FileBlockStore: cannot open " + path_.string() +
                    " for read");
  }
  rs.in.clear();  // a previous read may have hit EOF; the file may have grown
  // fistlint:allow(blocking-under-lock) see slot_mutex comment above
  rs.in.seekg(static_cast<std::streamoff>(pos));
  Bytes raw(len);
  // fistlint:allow(blocking-under-lock) see slot_mutex comment above
  rs.in.read(reinterpret_cast<char*>(raw.data()),
             static_cast<std::streamsize>(len));
  if (rs.in.gcount() != static_cast<std::streamsize>(len)) {
    // fistlint:allow(blocking-under-lock) see slot_mutex comment above
    rs.in.close();  // drop the handle; the file shrank or the read failed
    throw ParseError("blk file: truncated record " + std::to_string(index));
  }
  return raw;
}

Block FileBlockStore::read(std::size_t index) const {
  if (index >= offsets_.size())
    throw UsageError("FileBlockStore::read: index out of range");
  if (fault::fire("blockstore.read", index))
    throw IoError("fault injected: blockstore.read (record " +
                  std::to_string(index) + ")");
  Bytes raw = read_payload(index);
  if (have_sums_ && options_.verify_checksums && index < sums_.size() &&
      payload_sum(raw) != sums_[index])
    throw ParseError("blk file: checksum mismatch at record " +
                     std::to_string(index));
  try {
    return Block::from_bytes(raw);
  } catch (const ParseError& e) {
    throw ParseError("record " + std::to_string(index) + ": " + e.what());
  }
}

}  // namespace fist
