#include "chain/interpreter.hpp"

#include "chain/sighash.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/hash.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/sha256.hpp"
#include "script/standard.hpp"

namespace fist {

const char* script_error_name(ScriptError e) noexcept {
  switch (e) {
    case ScriptError::Ok: return "ok";
    case ScriptError::EvalFalse: return "eval-false";
    case ScriptError::BadOpcode: return "bad-opcode";
    case ScriptError::StackUnderflow: return "stack-underflow";
    case ScriptError::EqualVerifyFailed: return "equalverify";
    case ScriptError::CheckSigFailed: return "checksigverify";
    case ScriptError::CheckMultisigFailed: return "checkmultisigverify";
    case ScriptError::OpReturn: return "op-return";
    case ScriptError::SigPushOnly: return "sig-not-push-only";
    case ScriptError::BadRedeemScript: return "bad-redeem-script";
    case ScriptError::MalformedScript: return "malformed-script";
  }
  return "?";
}

bool TransactionSignatureChecker::check_sig(ByteView sig_with_hashtype,
                                            ByteView pubkey,
                                            const Script& script_code) const {
  if (sig_with_hashtype.size() < 9) return false;  // DER floor + hashtype
  std::uint8_t hashtype = sig_with_hashtype.back();
  SigHashType base = sighash_base(hashtype);
  if (base != SigHashType::All && base != SigHashType::None &&
      base != SigHashType::Single)
    return false;
  try {
    Signature sig = Signature::from_der(
        sig_with_hashtype.first(sig_with_hashtype.size() - 1));
    PublicKey pub = PublicKey::parse(pubkey);
    Hash256 digest =
        signature_hash_raw(*tx_, input_, script_code, hashtype);
    return ecdsa_verify(pub, digest, sig);
  } catch (const Error&) {
    return false;
  }
}

namespace {

// Bitcoin's CastToBool: false iff empty or all zero bytes (allowing a
// single 0x80 "negative zero" terminator).
bool cast_to_bool(const Bytes& v) noexcept {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] != 0) {
      if (i == v.size() - 1 && v[i] == 0x80) return false;
      return true;
    }
  }
  return false;
}

Bytes bool_bytes(bool v) { return v ? Bytes{1} : Bytes{}; }

// Decodes a small stack integer (for multisig's m and n): accepts
// empty (0) and single-byte values 1..16.
std::optional<int> small_int(const Bytes& v) noexcept {
  if (v.empty()) return 0;
  if (v.size() == 1 && v[0] >= 1 && v[0] <= 16) return v[0];
  return std::nullopt;
}

}  // namespace

ScriptError eval_script(std::vector<Bytes>& stack, const Script& script,
                        const SignatureChecker& checker) {
  auto parsed = script.ops_checked();
  if (!parsed) return ScriptError::MalformedScript;

  auto need = [&](std::size_t n) { return stack.size() >= n; };

  for (const ScriptOp& op : *parsed) {
    if (op.is_push()) {
      stack.push_back(op.push);
      continue;
    }
    int small = small_int_value(op.op);
    if (small >= 1) {
      stack.push_back(Bytes{static_cast<std::uint8_t>(small)});
      continue;
    }

    switch (op.op) {
      case Opcode::OP_NOP:
        break;
      case Opcode::OP_1NEGATE:
        stack.push_back(Bytes{0x81});
        break;
      case Opcode::OP_RETURN:
        return ScriptError::OpReturn;
      case Opcode::OP_DUP:
        if (!need(1)) return ScriptError::StackUnderflow;
        stack.push_back(stack.back());
        break;
      case Opcode::OP_EQUAL:
      case Opcode::OP_EQUALVERIFY: {
        if (!need(2)) return ScriptError::StackUnderflow;
        bool equal = stack[stack.size() - 1] == stack[stack.size() - 2];
        stack.pop_back();
        stack.pop_back();
        if (op.op == Opcode::OP_EQUALVERIFY) {
          if (!equal) return ScriptError::EqualVerifyFailed;
        } else {
          stack.push_back(bool_bytes(equal));
        }
        break;
      }
      case Opcode::OP_RIPEMD160: {
        if (!need(1)) return ScriptError::StackUnderflow;
        auto digest = ripemd160(stack.back());
        stack.back() = Bytes(digest.begin(), digest.end());
        break;
      }
      case Opcode::OP_SHA256: {
        if (!need(1)) return ScriptError::StackUnderflow;
        auto digest = sha256(stack.back());
        stack.back() = Bytes(digest.begin(), digest.end());
        break;
      }
      case Opcode::OP_HASH160: {
        if (!need(1)) return ScriptError::StackUnderflow;
        Hash160 digest = hash160(stack.back());
        stack.back() = Bytes(digest.view().begin(), digest.view().end());
        break;
      }
      case Opcode::OP_HASH256: {
        if (!need(1)) return ScriptError::StackUnderflow;
        Hash256 digest = hash256(stack.back());
        stack.back() = Bytes(digest.view().begin(), digest.view().end());
        break;
      }
      case Opcode::OP_CHECKSIG:
      case Opcode::OP_CHECKSIGVERIFY: {
        if (!need(2)) return ScriptError::StackUnderflow;
        Bytes pubkey = std::move(stack.back());
        stack.pop_back();
        Bytes sig = std::move(stack.back());
        stack.pop_back();
        bool ok = checker.check_sig(sig, pubkey, script);
        if (op.op == Opcode::OP_CHECKSIGVERIFY) {
          if (!ok) return ScriptError::CheckSigFailed;
        } else {
          stack.push_back(bool_bytes(ok));
        }
        break;
      }
      case Opcode::OP_CHECKMULTISIG:
      case Opcode::OP_CHECKMULTISIGVERIFY: {
        // Stack: <dummy> <sig...m> <m> <pk...n> <n>
        if (!need(1)) return ScriptError::StackUnderflow;
        std::optional<int> n = small_int(stack.back());
        stack.pop_back();
        if (!n || *n < 0 || *n > 16 || !need(static_cast<std::size_t>(*n) + 1))
          return ScriptError::StackUnderflow;
        std::vector<Bytes> pubkeys(static_cast<std::size_t>(*n));
        for (int i = *n - 1; i >= 0; --i) {
          pubkeys[static_cast<std::size_t>(i)] = std::move(stack.back());
          stack.pop_back();
        }
        std::optional<int> m = small_int(stack.back());
        stack.pop_back();
        if (!m || *m < 0 || *m > *n || !need(static_cast<std::size_t>(*m) + 1))
          return ScriptError::StackUnderflow;
        std::vector<Bytes> sigs(static_cast<std::size_t>(*m));
        for (int i = *m - 1; i >= 0; --i) {
          sigs[static_cast<std::size_t>(i)] = std::move(stack.back());
          stack.pop_back();
        }
        // The famous off-by-one: an extra element is consumed.
        stack.pop_back();

        // Order-preserving match: each signature must verify against a
        // pubkey later in the list than the previous match.
        std::size_t pk = 0;
        std::size_t matched = 0;
        for (const Bytes& sig : sigs) {
          bool found = false;
          while (pk < pubkeys.size()) {
            if (checker.check_sig(sig, pubkeys[pk], script)) {
              found = true;
              ++pk;
              break;
            }
            ++pk;
          }
          if (!found) break;
          ++matched;
        }
        bool ok = matched == sigs.size();
        if (op.op == Opcode::OP_CHECKMULTISIGVERIFY) {
          if (!ok) return ScriptError::CheckMultisigFailed;
        } else {
          stack.push_back(bool_bytes(ok));
        }
        break;
      }
      default:
        return ScriptError::BadOpcode;
    }
  }
  return ScriptError::Ok;
}

ScriptError verify_script(const Script& script_sig,
                          const Script& script_pubkey,
                          const SignatureChecker& checker) {
  // scriptSig must be push-only (standardness; consensus for P2SH).
  auto sig_ops = script_sig.ops_checked();
  if (!sig_ops) return ScriptError::MalformedScript;
  for (const ScriptOp& op : *sig_ops)
    if (!op.is_push()) return ScriptError::SigPushOnly;

  std::vector<Bytes> stack;
  ScriptError err = eval_script(stack, script_sig, checker);
  if (err != ScriptError::Ok) return err;
  std::vector<Bytes> sig_stack = stack;  // saved for P2SH

  err = eval_script(stack, script_pubkey, checker);
  if (err != ScriptError::Ok) return err;
  if (stack.empty() || !cast_to_bool(stack.back()))
    return ScriptError::EvalFalse;

  // P2SH: re-run with the redeem script.
  if (classify(script_pubkey).type == ScriptType::P2SH) {
    if (sig_stack.empty()) return ScriptError::StackUnderflow;
    Bytes redeem_bytes = sig_stack.back();
    sig_stack.pop_back();
    Script redeem(redeem_bytes);
    if (!redeem.ops_checked()) return ScriptError::BadRedeemScript;
    std::vector<Bytes> p2sh_stack = std::move(sig_stack);
    err = eval_script(p2sh_stack, redeem, checker);
    if (err != ScriptError::Ok) return err;
    if (p2sh_stack.empty() || !cast_to_bool(p2sh_stack.back()))
      return ScriptError::EvalFalse;
  }
  return ScriptError::Ok;
}

}  // namespace fist
