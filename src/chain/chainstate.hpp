// chainstate.hpp — consensus-lite chain validation.
//
// ChainState connects blocks in order and enforces the accounting rules
// a forensic pipeline must be able to trust: inputs exist and are
// unspent (no double spends), value is conserved (fee >= 0), coinbase
// rewards respect subsidy + fees, coinbases mature before being spent,
// and headers chain correctly with valid proof-of-work.
//
// Deliberately out of scope: full script execution per input (available
// separately via chain/sighash.hpp) and difficulty retargeting — the
// simulator mines at fixed easy difficulty.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/pow.hpp"
#include "chain/utxo.hpp"

namespace fist {

/// Validation parameters.
struct ChainParams {
  int coinbase_maturity = 100;     ///< blocks before a reward is spendable
  int halving_interval = 210'000;  ///< subsidy halving period
  bool check_pow = true;           ///< verify header hash meets nBits
  bool check_merkle = true;        ///< verify header commits to the txs
  /// Execute every input's script with real signature verification
  /// (chain/interpreter.hpp). Requires chains produced with genuine
  /// ECDSA (sim::KeyMode::Real); fast-mode placeholder signatures fail.
  bool verify_scripts = false;
  std::uint32_t expected_bits = kEasyBits;  ///< target every header must carry
};

/// Aggregate statistics maintained while connecting blocks.
struct ChainStats {
  std::uint64_t transactions = 0;
  std::uint64_t coinbase_transactions = 0;
  Amount total_fees = 0;
  Amount minted = 0;  ///< total subsidy issued
};

/// Connects blocks and maintains the UTXO set + block index.
class ChainState {
 public:
  explicit ChainState(ChainParams params = {}) : params_(params) {}

  /// Validates and connects `block` on top of the current tip.
  /// Throws ValidationError describing the first rule violated.
  void connect(const Block& block);

  /// Current best height (-1 when empty).
  int height() const noexcept {
    return static_cast<int>(hashes_.size()) - 1;
  }

  /// Hash of the block at `h`. Throws UsageError when out of range.
  const Hash256& block_hash(int h) const;

  /// Height of a known block hash, or -1.
  int find_height(const Hash256& hash) const noexcept;

  const UtxoSet& utxos() const noexcept { return utxo_; }
  const ChainStats& stats() const noexcept { return stats_; }
  const ChainParams& params() const noexcept { return params_; }

 private:
  ChainParams params_;
  UtxoSet utxo_;
  std::vector<Hash256> hashes_;
  std::unordered_map<Hash256, int> height_of_;
  ChainStats stats_;
};

}  // namespace fist
