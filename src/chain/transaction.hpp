// transaction.hpp — Bitcoin transactions and their wire format.
//
// Transactions are the atoms of the forensic analysis: every heuristic
// in the paper is a statement about transaction structure. This module
// gives them a faithful in-memory form with Bitcoin's exact (pre-segwit)
// serialization, so the pipeline can consume real or simulated chains
// byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "crypto/hash.hpp"
#include "script/script.hpp"
#include "util/amount.hpp"
#include "util/serialize.hpp"

namespace fist {

/// Reference to a transaction output: (txid, output index).
struct OutPoint {
  Hash256 txid;
  std::uint32_t index = 0;

  /// The coinbase marker: null txid and index 0xffffffff.
  static OutPoint coinbase() noexcept {
    return OutPoint{Hash256{}, 0xffffffffu};
  }

  /// True iff this is the coinbase marker.
  bool is_coinbase() const noexcept {
    return index == 0xffffffffu && txid.is_null();
  }

  void serialize(Writer& w) const;
  static OutPoint deserialize(Reader& r);

  auto operator<=>(const OutPoint&) const noexcept = default;
};

/// Transaction input: the outpoint being spent plus its unlocking script.
struct TxIn {
  OutPoint prevout;
  Script script_sig;
  std::uint32_t sequence = 0xffffffffu;

  void serialize(Writer& w) const;
  static TxIn deserialize(Reader& r);

  bool operator==(const TxIn&) const = default;
};

/// Transaction output: an amount locked by a scriptPubKey.
struct TxOut {
  Amount value = 0;
  Script script_pubkey;

  void serialize(Writer& w) const;
  static TxOut deserialize(Reader& r);

  bool operator==(const TxOut&) const = default;
};

/// A full transaction (version, inputs, outputs, locktime).
class Transaction {
 public:
  std::int32_t version = 1;
  std::vector<TxIn> inputs;
  std::vector<TxOut> outputs;
  std::uint32_t locktime = 0;

  /// True iff this is a coin-generation (coinbase) transaction: exactly
  /// one input carrying the coinbase marker.
  bool is_coinbase() const noexcept {
    return inputs.size() == 1 && inputs[0].prevout.is_coinbase();
  }

  /// Sum of output values (checked).
  Amount value_out() const;

  /// Appends the wire serialization.
  void serialize(Writer& w) const;

  /// Serializes to a fresh buffer.
  Bytes serialize() const;

  /// Parses one transaction from the reader.
  static Transaction deserialize(Reader& r);

  /// Parses a standalone buffer (must consume it fully).
  static Transaction from_bytes(ByteView raw);

  /// The transaction id: SHA256d of the serialization (computed on
  /// demand; cache at call sites that loop).
  Hash256 txid() const;

  bool operator==(const Transaction&) const = default;
};

}  // namespace fist

namespace std {
template <>
struct hash<fist::OutPoint> {
  size_t operator()(const fist::OutPoint& o) const noexcept {
    return static_cast<size_t>(o.txid.low64() ^
                               (static_cast<uint64_t>(o.index) << 32 |
                                o.index));
  }
};
}  // namespace std
