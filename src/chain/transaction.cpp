#include "chain/transaction.hpp"

#include "util/error.hpp"

namespace fist {

void OutPoint::serialize(Writer& w) const {
  w.bytes(txid.view());
  w.u32le(index);
}

OutPoint OutPoint::deserialize(Reader& r) {
  OutPoint out;
  out.txid = Hash256::from_bytes(r.bytes(32));
  out.index = r.u32le();
  return out;
}

void TxIn::serialize(Writer& w) const {
  prevout.serialize(w);
  w.var_bytes(script_sig.view());
  w.u32le(sequence);
}

TxIn TxIn::deserialize(Reader& r) {
  TxIn in;
  in.prevout = OutPoint::deserialize(r);
  in.script_sig = Script(r.var_bytes());
  in.sequence = r.u32le();
  return in;
}

void TxOut::serialize(Writer& w) const {
  w.i64le(value);
  w.var_bytes(script_pubkey.view());
}

TxOut TxOut::deserialize(Reader& r) {
  TxOut out;
  out.value = r.i64le();
  out.script_pubkey = Script(r.var_bytes());
  return out;
}

Amount Transaction::value_out() const {
  Amount total = 0;
  for (const TxOut& out : outputs) total = add_money(total, out.value);
  return total;
}

void Transaction::serialize(Writer& w) const {
  w.i32le(version);
  w.varint(inputs.size());
  for (const TxIn& in : inputs) in.serialize(w);
  w.varint(outputs.size());
  for (const TxOut& out : outputs) out.serialize(w);
  w.u32le(locktime);
}

Bytes Transaction::serialize() const {
  Writer w;
  serialize(w);
  return w.take();
}

Transaction Transaction::deserialize(Reader& r) {
  Transaction tx;
  tx.version = r.i32le();
  std::uint64_t nin = r.varint();
  if (nin > 1'000'000) throw ParseError("tx: absurd input count");
  tx.inputs.reserve(nin);
  for (std::uint64_t i = 0; i < nin; ++i)
    tx.inputs.push_back(TxIn::deserialize(r));
  std::uint64_t nout = r.varint();
  if (nout > 1'000'000) throw ParseError("tx: absurd output count");
  tx.outputs.reserve(nout);
  for (std::uint64_t i = 0; i < nout; ++i)
    tx.outputs.push_back(TxOut::deserialize(r));
  tx.locktime = r.u32le();
  if (tx.inputs.empty() || tx.outputs.empty())
    throw ParseError("tx: empty input or output list");
  return tx;
}

Transaction Transaction::from_bytes(ByteView raw) {
  Reader r(raw);
  Transaction tx = deserialize(r);
  r.expect_eof();
  return tx;
}

Hash256 Transaction::txid() const {
  return hash256(serialize());
}

}  // namespace fist
