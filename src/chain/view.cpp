#include "chain/view.hpp"

#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist {

Amount TxView::value_in() const noexcept {
  Amount total = 0;
  for (const InputView& in : inputs) total += in.value;
  return total;
}

Amount TxView::value_out() const noexcept {
  Amount total = 0;
  for (const OutputView& out : outputs) total += out.value;
  return total;
}

void ChainView::add_block(const Block& block, std::int32_t height) {
  for (const Transaction& tx : block.transactions) {
    TxIndex index = static_cast<TxIndex>(txs_.size());
    TxView view;
    view.txid = tx.txid();
    view.height = height;
    view.time = static_cast<Timestamp>(block.header.time);
    view.coinbase = tx.is_coinbase();

    if (!view.coinbase) {
      view.inputs.reserve(tx.inputs.size());
      for (const TxIn& in : tx.inputs) {
        InputView iv;
        auto it = txid_index_.find(in.prevout.txid);
        if (it != txid_index_.end()) {
          TxIndex prev = it->second;
          TxView& funding = txs_[prev];
          if (in.prevout.index < funding.outputs.size()) {
            OutputView& spent = funding.outputs[in.prevout.index];
            if (spent.spent_by != kNoTx)
              throw ValidationError("view: double spend in stored chain");
            spent.spent_by = index;
            iv.addr = spent.addr;
            iv.value = spent.value;
            iv.prev_tx = prev;
            iv.prev_index = in.prevout.index;
          } else {
            throw ValidationError("view: input references bad output slot");
          }
        } else {
          throw ValidationError("view: input references unknown txid");
        }
        view.inputs.push_back(iv);
      }
    }

    view.outputs.reserve(tx.outputs.size());
    for (const TxOut& out : tx.outputs) {
      OutputView ov;
      ov.value = out.value;
      if (auto addr = extract_address(out.script_pubkey))
        ov.addr = book_.intern(*addr);
      view.outputs.push_back(ov);
    }

    txid_index_.emplace(view.txid, index);
    txs_.push_back(std::move(view));
  }
  ++block_count_;
}

void ChainView::finish() {
  first_seen_.assign(book_.size(), kNoTx);
  for (TxIndex t = 0; t < txs_.size(); ++t) {
    const TxView& tx = txs_[t];
    auto mark = [&](AddrId a) {
      if (a != kNoAddr && first_seen_[a] == kNoTx) first_seen_[a] = t;
    };
    for (const InputView& in : tx.inputs) mark(in.addr);
    for (const OutputView& out : tx.outputs) mark(out.addr);
  }
}

ChainView ChainView::build(const BlockStore& store) {
  ChainView view;
  for (std::size_t i = 0; i < store.count(); ++i) {
    Block block = store.read(i);
    view.add_block(block, static_cast<std::int32_t>(i));
  }
  view.finish();
  return view;
}

ChainView ChainView::build(const std::vector<Block>& blocks) {
  ChainView view;
  for (std::size_t i = 0; i < blocks.size(); ++i)
    view.add_block(blocks[i], static_cast<std::int32_t>(i));
  view.finish();
  return view;
}

const TxView& ChainView::tx(TxIndex i) const {
  if (i >= txs_.size()) throw UsageError("ChainView::tx: index out of range");
  return txs_[i];
}

TxIndex ChainView::find_tx(const Hash256& txid) const noexcept {
  auto it = txid_index_.find(txid);
  return it == txid_index_.end() ? kNoTx : it->second;
}

TxIndex ChainView::first_seen(AddrId addr) const noexcept {
  if (addr == kNoAddr || addr >= first_seen_.size()) return kNoTx;
  return first_seen_[addr];
}

}  // namespace fist
