#include "chain/view.hpp"

#include "core/fault.hpp"
#include "core/obs/flightrec.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"
#include "core/obs/span.hpp"
#include "script/standard.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace fist {

namespace {

/// Registry handles for the chain-view build, bound once. Script-class
/// counters are indexed by ScriptType; every output is classified
/// exactly once on both the sequential and the parallel path, so the
/// totals are thread-count-invariant — as are the quarantine counters,
/// whose firing set is a pure function of the store and the armed
/// fault configuration.
struct ViewMetrics {
  obs::Counter blocks;
  obs::Counter txs;
  obs::Counter addresses;
  obs::Counter quarantined_blocks;
  obs::Counter quarantined_txs;
  obs::Counter windows;
  obs::Gauge window_size;
  obs::Counter script_class[6];
  obs::Histogram tx_inputs;
  obs::Histogram tx_outputs;

  static const ViewMetrics& get() {
    static const ViewMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      ViewMetrics m;
      m.blocks = r.counter("view.blocks");
      m.txs = r.counter("view.txs");
      m.addresses = r.counter("view.addresses_interned");
      m.quarantined_blocks = r.counter("ingest.quarantined.blocks");
      m.quarantined_txs = r.counter("ingest.quarantined.txs");
      m.windows = r.counter("view.window.count");
      m.window_size = r.gauge("view.window.blocks");
      m.script_class[static_cast<int>(ScriptType::NonStandard)] =
          r.counter("view.script.nonstandard");
      m.script_class[static_cast<int>(ScriptType::P2PK)] =
          r.counter("view.script.p2pk");
      m.script_class[static_cast<int>(ScriptType::P2PKH)] =
          r.counter("view.script.p2pkh");
      m.script_class[static_cast<int>(ScriptType::P2SH)] =
          r.counter("view.script.p2sh");
      m.script_class[static_cast<int>(ScriptType::Multisig)] =
          r.counter("view.script.multisig");
      m.script_class[static_cast<int>(ScriptType::NullData)] =
          r.counter("view.script.nulldata");
      std::vector<double> shape{0, 1, 2, 4, 8, 16, 32, 64};
      m.tx_inputs = r.histogram("view.tx_inputs", shape);
      m.tx_outputs = r.histogram("view.tx_outputs", shape);
      return m;
    }();
    return metrics;
  }
};

/// Classifies an output script, counting its class.
std::optional<Address> classify_output(const Script& script_pubkey) {
  Classified cls = classify(script_pubkey);
  ViewMetrics::get().script_class[static_cast<int>(cls.type)].inc();
  return address_of(cls);
}

/// The deterministic ingest-level decode fault site: keyed by record
/// index, so the injected set is identical at any thread count.
void probe_decode_fault(std::size_t record) {
  if (fault::fire("decode.block", record))
    throw ParseError("fault injected: decode.block (record " +
                     std::to_string(record) + ")");
}

void note_quarantined_block(IngestReport* report, Quarantined::Stage stage,
                            std::uint64_t record, std::string reason) {
  ViewMetrics::get().quarantined_blocks.inc();
  obs::flight_event("flight.quarantine_block", reason, record);
  if (report != nullptr) {
    Quarantined q;
    q.stage = stage;
    q.record = record;
    q.reason = std::move(reason);
    report->blocks.push_back(std::move(q));
  }
}

}  // namespace

Amount TxView::value_in() const noexcept {
  Amount total = 0;
  for (const InputView& in : inputs) total += in.value;
  return total;
}

Amount TxView::value_out() const noexcept {
  Amount total = 0;
  for (const OutputView& out : outputs) total += out.value;
  return total;
}

void ChainView::ingest_block(const Block& block, std::uint64_t record,
                             RecoveryPolicy policy, IngestReport* report) {
  std::int32_t height = static_cast<std::int32_t>(block_count_);
  std::uint32_t tx_ordinal = 0;
  for (const Transaction& tx : block.transactions) {
    std::uint32_t ordinal = tx_ordinal++;
    TxIndex index = static_cast<TxIndex>(txs_.size());
    TxView view;
    view.txid = tx.txid();
    view.height = height;
    view.time = static_cast<Timestamp>(block.header.time);
    view.coinbase = tx.is_coinbase();

    // Outputs first: classification and interning happen for every
    // decoded transaction, even one quarantined below for a resolve
    // failure — the parallel build interns during its scan phase, so
    // dense-id assignment must not depend on the execution path.
    view.outputs.reserve(tx.outputs.size());
    for (const TxOut& out : tx.outputs) {
      OutputView ov;
      ov.value = out.value;
      if (auto addr = classify_output(out.script_pubkey))
        ov.addr = book_.intern(*addr);
      view.outputs.push_back(ov);
    }

    if (!view.coinbase) {
      view.inputs.reserve(tx.inputs.size());
      // Spend marks made so far for this transaction, so a late
      // resolve failure can roll them back before quarantining.
      std::vector<std::pair<TxIndex, std::uint32_t>> marked;
      const char* why = nullptr;
      for (const TxIn& in : tx.inputs) {
        InputView iv;
        auto it = txid_index_.find(in.prevout.txid);
        if (it == txid_index_.end()) {
          why = "view: input references unknown txid";
          break;
        }
        TxIndex prev = it->second;
        TxView& funding = txs_[prev];
        if (in.prevout.index >= funding.outputs.size()) {
          why = "view: input references bad output slot";
          break;
        }
        OutputView& spent = funding.outputs[in.prevout.index];
        if (spent.spent_by != kNoTx) {
          why = "view: double spend in stored chain";
          break;
        }
        spent.spent_by = index;
        marked.emplace_back(prev, in.prevout.index);
        iv.addr = spent.addr;
        iv.value = spent.value;
        iv.prev_tx = prev;
        iv.prev_index = in.prevout.index;
        view.inputs.push_back(iv);
      }
      if (why != nullptr) {
        for (auto [p, slot] : marked) txs_[p].outputs[slot].spent_by = kNoTx;
        if (policy == RecoveryPolicy::Strict) throw ValidationError(why);
        ViewMetrics::get().quarantined_txs.inc();
        obs::flight_event("flight.quarantine_tx", why, record, ordinal);
        if (report != nullptr) {
          Quarantined q;
          q.stage = Quarantined::Stage::Resolve;
          q.record = record;
          q.tx = ordinal;
          q.txid = view.txid;
          q.reason = why;
          report->txs.push_back(std::move(q));
        }
        continue;  // transaction quarantined, not appended
      }
    }

    txid_index_.emplace(view.txid, index);
    txs_.push_back(std::move(view));
  }
  ++block_count_;
}

bool ChainView::append_tx(TxView&& tv, const OutPoint* prevouts,
                          std::size_t n_inputs, std::uint64_t record,
                          std::uint32_t ordinal, RecoveryPolicy policy,
                          IngestReport* report) {
  TxIndex index = static_cast<TxIndex>(txs_.size());
  if (!tv.coinbase) {
    tv.inputs.reserve(n_inputs);
    std::vector<std::pair<TxIndex, std::uint32_t>> marked;
    const char* why = nullptr;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      const OutPoint& prevout = prevouts[i];
      InputView iv;
      auto it = txid_index_.find(prevout.txid);
      if (it == txid_index_.end()) {
        why = "view: input references unknown txid";
        break;
      }
      TxIndex prev = it->second;
      TxView& funding = txs_[prev];
      if (prevout.index >= funding.outputs.size()) {
        why = "view: input references bad output slot";
        break;
      }
      OutputView& spent = funding.outputs[prevout.index];
      if (spent.spent_by != kNoTx) {
        why = "view: double spend in stored chain";
        break;
      }
      spent.spent_by = index;
      marked.emplace_back(prev, prevout.index);
      iv.addr = spent.addr;
      iv.value = spent.value;
      iv.prev_tx = prev;
      iv.prev_index = prevout.index;
      tv.inputs.push_back(iv);
    }
    if (why != nullptr) {
      for (auto [p, slot] : marked) txs_[p].outputs[slot].spent_by = kNoTx;
      if (policy == RecoveryPolicy::Strict) throw ValidationError(why);
      ViewMetrics::get().quarantined_txs.inc();
      obs::flight_event("flight.quarantine_tx", why, record, ordinal);
      if (report != nullptr) {
        Quarantined q;
        q.stage = Quarantined::Stage::Resolve;
        q.record = record;
        q.tx = ordinal;
        q.txid = tv.txid;
        q.reason = why;
        report->txs.push_back(std::move(q));
      }
      return false;
    }
  }
  txid_index_.emplace(tv.txid, index);
  txs_.push_back(std::move(tv));
  return true;
}

void ChainView::finish() {
  first_seen_.assign(book_.size(), kNoTx);
  for (TxIndex t = 0; t < txs_.size(); ++t) {
    const TxView& tx = txs_[t];
    auto mark = [&](AddrId a) {
      if (a != kNoAddr && first_seen_[a] == kNoTx) first_seen_[a] = t;
    };
    for (const InputView& in : tx.inputs) mark(in.addr);
    for (const OutputView& out : tx.outputs) mark(out.addr);
  }
}

void ChainView::finish(Executor& exec) {
  if (exec.inline_mode()) {
    finish();
    return;
  }
  // Each shard scans a contiguous transaction range into its own
  // first-seen table; the merge takes, per address, the earliest
  // shard's entry — a min-reduction, so the result does not depend on
  // shard count or scheduling.
  std::size_t n_addr = book_.size();
  std::size_t n_tx = txs_.size();
  std::size_t shard_count = exec.worker_count();
  if (shard_count > n_tx) shard_count = n_tx == 0 ? 1 : n_tx;
  std::vector<std::vector<TxIndex>> local(shard_count);
  exec.parallel_for_each(0, shard_count, [&](std::size_t s) {
    std::vector<TxIndex>& seen = local[s];
    seen.assign(n_addr, kNoTx);
    std::size_t lo = n_tx * s / shard_count;
    std::size_t hi = n_tx * (s + 1) / shard_count;
    for (std::size_t t = lo; t < hi; ++t) {
      const TxView& tx = txs_[t];
      auto mark = [&](AddrId a) {
        if (a != kNoAddr && seen[a] == kNoTx)
          seen[a] = static_cast<TxIndex>(t);
      };
      for (const InputView& in : tx.inputs) mark(in.addr);
      for (const OutputView& out : tx.outputs) mark(out.addr);
    }
  });
  first_seen_.assign(n_addr, kNoTx);
  exec.parallel_for(0, n_addr, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t a = lo; a < hi; ++a)
      for (std::size_t s = 0; s < shard_count; ++s)
        if (local[s][a] != kNoTx) {
          first_seen_[a] = local[s][a];  // shards ascend in tx order
          break;
        }
  });
}

TxIndex ChainView::apply_delta(const std::vector<Block>& blocks,
                               RecoveryPolicy policy, IngestReport* report) {
  if (report != nullptr) report->policy = policy;
  const TxIndex from = static_cast<TxIndex>(txs_.size());
  for (const Block& block : blocks)
    ingest_block(block, block_count_, policy, report);
  // Extend the first-seen table in place. Existing entries are stable
  // under append; outputs of quarantined transactions stay interned
  // with no appearance (kNoTx), exactly as a batch build leaves them.
  first_seen_.resize(book_.size(), kNoTx);
  for (TxIndex t = from; t < txs_.size(); ++t) {
    const TxView& tx = txs_[t];
    auto mark = [&](AddrId a) {
      if (a != kNoAddr && first_seen_[a] == kNoTx) first_seen_[a] = t;
    };
    for (const InputView& in : tx.inputs) mark(in.addr);
    for (const OutputView& out : tx.outputs) mark(out.addr);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("delta.blocks").add(blocks.size());
  registry.counter("delta.txs").add(txs_.size() - from);
  return from;
}

ChainView ChainView::build(const BlockStore& store, RecoveryPolicy policy,
                           IngestReport* report) {
  if (report != nullptr) report->policy = policy;
  ChainView view;
  {
    obs::Span scan("view.scan");
    for (std::size_t i = 0; i < store.count(); ++i) {
      if (policy == RecoveryPolicy::Strict) {
        probe_decode_fault(i);
        view.ingest_block(store.read(i), i, policy, report);
        continue;
      }
      try {
        probe_decode_fault(i);
        Block block = store.read(i);
        view.ingest_block(block, i, policy, report);
      } catch (const IoError& e) {
        note_quarantined_block(report, Quarantined::Stage::Read, i, e.what());
      } catch (const ParseError& e) {
        note_quarantined_block(report, Quarantined::Stage::Decode, i,
                               e.what());
      }
    }
  }
  {
    obs::Span first_seen("view.first_seen");
    view.finish();
  }
  view.record_build_metrics();
  return view;
}

ChainView ChainView::build(const BlockStore& store) {
  return build(store, RecoveryPolicy::Strict, nullptr);
}

ChainView ChainView::build(const std::vector<Block>& blocks) {
  ChainView view;
  {
    obs::Span scan("view.scan");
    for (std::size_t i = 0; i < blocks.size(); ++i)
      view.ingest_block(blocks[i], i, RecoveryPolicy::Strict, nullptr);
  }
  {
    obs::Span first_seen("view.first_seen");
    view.finish();
  }
  view.record_build_metrics();
  return view;
}

namespace {

/// Pre-digested per-block data from the parallel scan: everything
/// expensive (deserialization, txid hashing, script classification,
/// shard interning) done, everything order-sensitive left for the
/// sequential assembly.
struct PreOutput {
  bool has_addr = false;
  ShardedAddressBook::Ref ref;
  Amount value = 0;
};

struct PreTx {
  Hash256 txid;
  bool coinbase = false;
  std::vector<OutPoint> prevouts;  // empty for coinbase
  std::vector<PreOutput> outputs;
};

struct PreBlock {
  Timestamp time = 0;
  std::vector<PreTx> txs;
  /// Read/decode failure captured during the parallel scan; resolved
  /// deterministically (lowest record first) in the assembly phase.
  bool failed = false;
  Quarantined::Stage fail_stage = Quarantined::Stage::Decode;
  std::string fail_reason;
  std::exception_ptr error;
};

}  // namespace

ChainView ChainView::build_parallel(
    std::size_t block_count,
    const std::function<Block(std::size_t)>& read_block, Executor& exec,
    RecoveryPolicy policy, IngestReport* report) {
  if (report != nullptr) report->policy = policy;
  // Phase 1 (parallel): scan blocks into pre-digested form, interning
  // output addresses into hash shards keyed by (block, output-slot)
  // appearance ordinals. The "view.scan" span covers phases 1 + 2 so
  // the span tree matches the sequential build's. A record whose read
  // or decode fails interns nothing and is marked failed — the
  // surviving records keep their ordinals, so dense ids match a build
  // over a store holding only the intact records.
  obs::Span scan_span("view.scan");
  ShardedAddressBook sharded;
  std::vector<PreBlock> pre(block_count);
  exec.parallel_for(0, block_count, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      PreBlock& pb = pre[b];
      Block block;
      try {
        probe_decode_fault(b);
        block = read_block(b);
      } catch (const IoError&) {
        pb.failed = true;
        pb.fail_stage = Quarantined::Stage::Read;
        pb.error = std::current_exception();
        continue;
      } catch (const ParseError&) {
        pb.failed = true;
        pb.fail_stage = Quarantined::Stage::Decode;
        pb.error = std::current_exception();
        continue;
      }
      pb.time = static_cast<Timestamp>(block.header.time);
      pb.txs.reserve(block.transactions.size());
      std::uint64_t slot = 0;  // output ordinal within the block
      for (const Transaction& tx : block.transactions) {
        PreTx pt;
        pt.txid = tx.txid();
        pt.coinbase = tx.is_coinbase();
        if (!pt.coinbase) {
          pt.prevouts.reserve(tx.inputs.size());
          for (const TxIn& in : tx.inputs) pt.prevouts.push_back(in.prevout);
        }
        pt.outputs.reserve(tx.outputs.size());
        for (const TxOut& out : tx.outputs) {
          PreOutput po;
          po.value = out.value;
          if (auto addr = classify_output(out.script_pubkey)) {
            std::uint64_t ordinal =
                (static_cast<std::uint64_t>(b) << 32) | slot;
            po.ref = sharded.intern(*addr, ordinal);
            po.has_addr = true;
          }
          ++slot;
          pt.outputs.push_back(po);
        }
        pb.txs.push_back(std::move(pt));
      }
    }
  });

  // Strict mode aborts on the lowest failed record — deterministic no
  // matter which worker saw its exception first.
  if (policy == RecoveryPolicy::Strict) {
    for (std::size_t b = 0; b < block_count; ++b)
      if (pre[b].failed) std::rethrow_exception(pre[b].error);
  }

  // Extract the reason text for quarantine entries (lenient only).
  for (std::size_t b = 0; b < block_count; ++b) {
    PreBlock& pb = pre[b];
    if (!pb.failed) continue;
    try {
      std::rethrow_exception(pb.error);
    } catch (const Error& e) {
      pb.fail_reason = e.what();
    }
  }

  // Phase 2 (sequential, deterministic): assign dense AddrIds by first
  // appearance, then assemble the view in chain order, resolving each
  // input against the outputs seen so far — exactly the sequential
  // build's semantics, including its double-spend checks and its
  // quarantine behaviour. Heights compact over surviving blocks.
  ShardedAddressBook::Finalized fin = sharded.finalize();
  ChainView view;
  view.book_ = std::move(fin.book);
  for (std::size_t b = 0; b < block_count; ++b) {
    PreBlock& pb = pre[b];
    if (pb.failed) {
      note_quarantined_block(report, pb.fail_stage, b,
                             std::move(pb.fail_reason));
      continue;
    }
    std::int32_t height = static_cast<std::int32_t>(view.block_count_);
    std::uint32_t tx_ordinal = 0;
    for (PreTx& pt : pb.txs) {
      std::uint32_t ordinal = tx_ordinal++;
      TxView tv;
      tv.txid = pt.txid;
      tv.height = height;
      tv.time = pb.time;
      tv.coinbase = pt.coinbase;
      tv.outputs.reserve(pt.outputs.size());
      for (const PreOutput& po : pt.outputs) {
        OutputView ov;
        ov.value = po.value;
        if (po.has_addr) ov.addr = fin.id(po.ref);
        tv.outputs.push_back(ov);
      }
      view.append_tx(std::move(tv), pt.prevouts.data(), pt.prevouts.size(), b,
                     ordinal, policy, report);
    }
    ++view.block_count_;
  }

  scan_span.close();

  // Phase 3 (parallel): first-seen table via sharded min-reduction.
  {
    obs::Span first_seen("view.first_seen");
    view.finish(exec);
  }
  view.record_build_metrics();
  return view;
}

namespace {

/// Columnar (SoA) staging for one window of pre-digested blocks. The
/// variable-size Block object graph is flattened into flat per-field
/// arrays with prefix-sum offset columns — the parallel fill phase
/// writes disjoint slices with no allocation or locking, and the
/// capacity persists across windows so steady state does no per-window
/// heap traffic beyond the decoded blocks themselves.
struct WindowColumns {
  // Per block (window-relative index):
  std::vector<std::uint8_t> failed;
  std::vector<Quarantined::Stage> fail_stage;
  std::vector<std::string> fail_reason;
  std::vector<std::exception_ptr> error;
  std::vector<Timestamp> time;
  std::vector<std::uint32_t> tx_begin;  // size nb + 1
  // Per transaction:
  std::vector<Hash256> txid;
  std::vector<std::uint8_t> coinbase;
  std::vector<std::uint32_t> in_begin;   // size nt + 1
  std::vector<std::uint32_t> out_begin;  // size nt + 1
  // Per input:
  std::vector<OutPoint> prevout;
  // Per output:
  std::vector<Amount> out_value;
  std::vector<std::uint8_t> out_has_addr;
  std::vector<Address> out_addr;

  void reset(std::size_t nb) {
    failed.assign(nb, 0);
    fail_stage.assign(nb, Quarantined::Stage::Decode);
    fail_reason.assign(nb, std::string());
    error.assign(nb, nullptr);
    time.assign(nb, 0);
  }

  /// Sizes the tx/input/output columns from the decoded blocks
  /// (failed slots contribute nothing). Cheap: counts only.
  void size_from(const std::vector<Block>& decoded) {
    std::size_t nb = decoded.size();
    tx_begin.assign(nb + 1, 0);
    for (std::size_t b = 0; b < nb; ++b)
      tx_begin[b + 1] =
          tx_begin[b] +
          (failed[b] ? 0u
                     : static_cast<std::uint32_t>(
                           decoded[b].transactions.size()));
    std::uint32_t nt = tx_begin[nb];
    in_begin.assign(nt + 1, 0);
    out_begin.assign(nt + 1, 0);
    for (std::size_t b = 0; b < nb; ++b) {
      if (failed[b]) continue;
      for (std::size_t t = 0; t < decoded[b].transactions.size(); ++t) {
        const Transaction& tx = decoded[b].transactions[t];
        std::uint32_t idx = tx_begin[b] + static_cast<std::uint32_t>(t);
        in_begin[idx + 1] =
            tx.is_coinbase() ? 0u
                             : static_cast<std::uint32_t>(tx.inputs.size());
        out_begin[idx + 1] = static_cast<std::uint32_t>(tx.outputs.size());
      }
    }
    for (std::uint32_t t = 0; t < nt; ++t) {
      in_begin[t + 1] += in_begin[t];
      out_begin[t + 1] += out_begin[t];
    }
    txid.resize(nt);
    coinbase.resize(nt);
    prevout.resize(in_begin[nt]);
    out_value.resize(out_begin[nt]);
    out_has_addr.assign(out_begin[nt], 0);
    out_addr.resize(out_begin[nt]);
  }
};

}  // namespace

ChainView ChainView::build_windowed(const BlockStore& store, Executor& exec,
                                    const BuildOptions& options) {
  if (options.window_blocks == 0)
    return build(store, exec, options.recovery, options.report);
  if (options.report != nullptr) options.report->policy = options.recovery;
  const RecoveryPolicy policy = options.recovery;
  IngestReport* report = options.report;
  const std::size_t total = store.count();
  const std::size_t window = options.window_blocks;
  ViewMetrics::get().window_size.set(
      static_cast<std::int64_t>(options.window_blocks));

  ChainView view;
  obs::Span scan_span("view.scan");
  // Live progress, one tick per window (per-block would be churn);
  // the window boundaries also land in the flight recorder so a run
  // that dies mid-build pins down which window it was digesting.
  const std::size_t n_windows = (total + window - 1) / window;
  obs::ProgressStage windows_progress =
      obs::ProgressBoard::global().begin_stage("view.windows", n_windows);
  WindowColumns cols;
  std::vector<Block> decoded;
  for (std::size_t w0 = 0; w0 < total; w0 += window) {
    const std::size_t nb = std::min(total, w0 + window) - w0;
    ViewMetrics::get().windows.inc();
    obs::flight_event("flight.window_start", "", w0 / window, nb);

    // Phase A (parallel): read + decode this window's records. Fault
    // sites fire by global record index, so the injected set matches
    // the whole-store builds at any window size.
    decoded.assign(nb, Block{});
    cols.reset(nb);
    exec.parallel_for(0, nb, 0, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t b = lo; b < hi; ++b) {
        try {
          probe_decode_fault(w0 + b);
          decoded[b] = store.read(w0 + b);
        } catch (const IoError&) {
          cols.failed[b] = 1;
          cols.fail_stage[b] = Quarantined::Stage::Read;
          cols.error[b] = std::current_exception();
          continue;
        } catch (const ParseError&) {
          cols.failed[b] = 1;
          cols.fail_stage[b] = Quarantined::Stage::Decode;
          cols.error[b] = std::current_exception();
          continue;
        }
        cols.time[b] = static_cast<Timestamp>(decoded[b].header.time);
      }
    });

    // Strict aborts on the lowest failed record, before classifying
    // anything later in the window — matching the sequential build,
    // where records past the failure are never scanned.
    if (policy == RecoveryPolicy::Strict) {
      for (std::size_t b = 0; b < nb; ++b)
        if (cols.failed[b]) std::rethrow_exception(cols.error[b]);
    }
    for (std::size_t b = 0; b < nb; ++b) {
      if (!cols.failed[b]) continue;
      try {
        std::rethrow_exception(cols.error[b]);
      } catch (const Error& e) {
        cols.fail_reason[b] = e.what();
      }
    }

    // Phase B (sequential, cheap): prefix-sum offset columns.
    cols.size_from(decoded);

    // Phase C (parallel): fill the columns — txid hashing and script
    // classification are the expensive per-record work.
    exec.parallel_for(0, nb, 0, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t b = lo; b < hi; ++b) {
        if (cols.failed[b]) continue;
        const Block& block = decoded[b];
        for (std::size_t t = 0; t < block.transactions.size(); ++t) {
          const Transaction& tx = block.transactions[t];
          std::uint32_t idx = cols.tx_begin[b] + static_cast<std::uint32_t>(t);
          cols.txid[idx] = tx.txid();
          cols.coinbase[idx] = tx.is_coinbase() ? 1 : 0;
          if (!cols.coinbase[idx])
            for (std::size_t i = 0; i < tx.inputs.size(); ++i)
              cols.prevout[cols.in_begin[idx] + i] = tx.inputs[i].prevout;
          for (std::size_t o = 0; o < tx.outputs.size(); ++o) {
            std::uint32_t slot =
                cols.out_begin[idx] + static_cast<std::uint32_t>(o);
            cols.out_value[slot] = tx.outputs[o].value;
            if (auto addr = classify_output(tx.outputs[o].script_pubkey)) {
              cols.out_addr[slot] = *addr;
              cols.out_has_addr[slot] = 1;
            }
          }
        }
      }
    });

    // Phase D (sequential): assemble in chain order, interning output
    // addresses on first sight — the same id-assignment order as the
    // sequential whole-store build, by construction.
    for (std::size_t b = 0; b < nb; ++b) {
      if (cols.failed[b]) {
        note_quarantined_block(report, cols.fail_stage[b], w0 + b,
                               std::move(cols.fail_reason[b]));
        continue;
      }
      std::int32_t height = static_cast<std::int32_t>(view.block_count_);
      for (std::uint32_t idx = cols.tx_begin[b]; idx < cols.tx_begin[b + 1];
           ++idx) {
        TxView tv;
        tv.txid = cols.txid[idx];
        tv.height = height;
        tv.time = cols.time[b];
        tv.coinbase = cols.coinbase[idx] != 0;
        std::uint32_t n_out = cols.out_begin[idx + 1] - cols.out_begin[idx];
        tv.outputs.reserve(n_out);
        for (std::uint32_t o = 0; o < n_out; ++o) {
          std::uint32_t slot = cols.out_begin[idx] + o;
          OutputView ov;
          ov.value = cols.out_value[slot];
          if (cols.out_has_addr[slot])
            ov.addr = view.book_.intern(cols.out_addr[slot]);
          tv.outputs.push_back(ov);
        }
        view.append_tx(std::move(tv), cols.prevout.data() + cols.in_begin[idx],
                       cols.in_begin[idx + 1] - cols.in_begin[idx], w0 + b,
                       idx - cols.tx_begin[b], policy, report);
      }
      ++view.block_count_;
    }
    obs::flight_event("flight.window_end", "", w0 / window, nb);
    windows_progress.advance();
    obs::progress_console_tick();
  }
  windows_progress.finish();
  scan_span.close();

  {
    obs::Span first_seen("view.first_seen");
    view.finish(exec);
  }
  view.record_build_metrics();
  return view;
}

void ChainView::record_build_metrics() const {
#ifndef FISTFUL_NO_OBS
  const ViewMetrics& m = ViewMetrics::get();
  m.blocks.add(block_count_);
  m.txs.add(txs_.size());
  m.addresses.add(book_.size());
  for (const TxView& tx : txs_) {
    m.tx_inputs.observe(static_cast<double>(tx.inputs.size()));
    m.tx_outputs.observe(static_cast<double>(tx.outputs.size()));
  }
#endif
}

ChainView ChainView::build(const BlockStore& store, Executor& exec) {
  return build(store, exec, RecoveryPolicy::Strict, nullptr);
}

ChainView ChainView::build(const BlockStore& store, Executor& exec,
                           RecoveryPolicy policy, IngestReport* report) {
  if (exec.inline_mode()) return build(store, policy, report);
  return build_parallel(
      store.count(), [&store](std::size_t i) { return store.read(i); }, exec,
      policy, report);
}

ChainView ChainView::build(const std::vector<Block>& blocks, Executor& exec) {
  if (exec.inline_mode()) return build(blocks);
  return build_parallel(
      blocks.size(), [&blocks](std::size_t i) { return blocks[i]; }, exec,
      RecoveryPolicy::Strict, nullptr);
}

Bytes ChainView::serialize() const {
  Writer w;
  w.u32le(1);  // checkpoint image version
  w.u64le(block_count_);
  w.varint(book_.size());
  for (AddrId a = 0; a < book_.size(); ++a) {
    const Address& addr = book_.lookup(a);
    w.u8(static_cast<std::uint8_t>(addr.type()));
    w.bytes(addr.payload().view());
  }
  w.varint(txs_.size());
  for (const TxView& tx : txs_) {
    w.bytes(tx.txid.view());
    w.i32le(tx.height);
    w.i64le(tx.time);
    w.u8(tx.coinbase ? 1 : 0);
    w.varint(tx.inputs.size());
    for (const InputView& in : tx.inputs) {
      w.u32le(in.addr);
      w.i64le(in.value);
      w.u32le(in.prev_tx);
      w.u32le(in.prev_index);
    }
    w.varint(tx.outputs.size());
    for (const OutputView& out : tx.outputs) {
      w.u32le(out.addr);
      w.i64le(out.value);
      w.u32le(out.spent_by);
    }
  }
  return w.take();
}

ChainView ChainView::deserialize(ByteView raw) {
  Reader r(raw);
  if (r.u32le() != 1)
    throw ParseError("ChainView::deserialize: unknown image version");
  ChainView view;
  view.block_count_ = r.u64le();
  std::uint64_t n_addr = r.varint();
  for (std::uint64_t a = 0; a < n_addr; ++a) {
    AddrType type = static_cast<AddrType>(r.u8());
    Hash160 payload = Hash160::from_bytes(r.bytes(Hash160::kSize));
    if (view.book_.intern(Address(type, payload)) != a)
      throw ParseError("ChainView::deserialize: duplicate address");
  }
  std::uint64_t n_tx = r.varint();
  view.txs_.reserve(n_tx);
  for (std::uint64_t t = 0; t < n_tx; ++t) {
    TxView tx;
    tx.txid = Hash256::from_bytes(r.bytes(Hash256::kSize));
    tx.height = r.i32le();
    tx.time = r.i64le();
    tx.coinbase = r.u8() != 0;
    std::uint64_t n_in = r.varint();
    tx.inputs.reserve(n_in);
    for (std::uint64_t i = 0; i < n_in; ++i) {
      InputView in;
      in.addr = r.u32le();
      in.value = r.i64le();
      in.prev_tx = r.u32le();
      in.prev_index = r.u32le();
      tx.inputs.push_back(in);
    }
    std::uint64_t n_out = r.varint();
    tx.outputs.reserve(n_out);
    for (std::uint64_t i = 0; i < n_out; ++i) {
      OutputView out;
      out.addr = r.u32le();
      out.value = r.i64le();
      out.spent_by = r.u32le();
      tx.outputs.push_back(out);
    }
    view.txid_index_.emplace(tx.txid, static_cast<TxIndex>(t));
    view.txs_.push_back(std::move(tx));
  }
  if (!r.empty())
    throw ParseError("ChainView::deserialize: trailing bytes");
  view.finish();
  return view;
}

const TxView& ChainView::tx(TxIndex i) const {
  if (i >= txs_.size()) throw UsageError("ChainView::tx: index out of range");
  return txs_[i];
}

TxIndex ChainView::find_tx(const Hash256& txid) const noexcept {
  auto it = txid_index_.find(txid);
  return it == txid_index_.end() ? kNoTx : it->second;
}

TxIndex ChainView::first_seen(AddrId addr) const noexcept {
  if (addr == kNoAddr || addr >= first_seen_.size()) return kNoTx;
  return first_seen_[addr];
}

}  // namespace fist
