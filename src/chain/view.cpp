#include "chain/view.hpp"

#include "core/obs/metrics.hpp"
#include "core/obs/span.hpp"
#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist {

namespace {

/// Registry handles for the chain-view build, bound once. Script-class
/// counters are indexed by ScriptType; every output is classified
/// exactly once on both the sequential and the parallel path, so the
/// totals are thread-count-invariant.
struct ViewMetrics {
  obs::Counter blocks;
  obs::Counter txs;
  obs::Counter addresses;
  obs::Counter script_class[6];
  obs::Histogram tx_inputs;
  obs::Histogram tx_outputs;

  static const ViewMetrics& get() {
    static const ViewMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      ViewMetrics m;
      m.blocks = r.counter("view.blocks");
      m.txs = r.counter("view.txs");
      m.addresses = r.counter("view.addresses_interned");
      m.script_class[static_cast<int>(ScriptType::NonStandard)] =
          r.counter("view.script.nonstandard");
      m.script_class[static_cast<int>(ScriptType::P2PK)] =
          r.counter("view.script.p2pk");
      m.script_class[static_cast<int>(ScriptType::P2PKH)] =
          r.counter("view.script.p2pkh");
      m.script_class[static_cast<int>(ScriptType::P2SH)] =
          r.counter("view.script.p2sh");
      m.script_class[static_cast<int>(ScriptType::Multisig)] =
          r.counter("view.script.multisig");
      m.script_class[static_cast<int>(ScriptType::NullData)] =
          r.counter("view.script.nulldata");
      std::vector<double> shape{0, 1, 2, 4, 8, 16, 32, 64};
      m.tx_inputs = r.histogram("view.tx_inputs", shape);
      m.tx_outputs = r.histogram("view.tx_outputs", shape);
      return m;
    }();
    return metrics;
  }
};

/// Classifies an output script, counting its class.
std::optional<Address> classify_output(const Script& script_pubkey) {
  Classified cls = classify(script_pubkey);
  ViewMetrics::get().script_class[static_cast<int>(cls.type)].inc();
  return address_of(cls);
}

}  // namespace

Amount TxView::value_in() const noexcept {
  Amount total = 0;
  for (const InputView& in : inputs) total += in.value;
  return total;
}

Amount TxView::value_out() const noexcept {
  Amount total = 0;
  for (const OutputView& out : outputs) total += out.value;
  return total;
}

void ChainView::add_block(const Block& block, std::int32_t height) {
  for (const Transaction& tx : block.transactions) {
    TxIndex index = static_cast<TxIndex>(txs_.size());
    TxView view;
    view.txid = tx.txid();
    view.height = height;
    view.time = static_cast<Timestamp>(block.header.time);
    view.coinbase = tx.is_coinbase();

    if (!view.coinbase) {
      view.inputs.reserve(tx.inputs.size());
      for (const TxIn& in : tx.inputs) {
        InputView iv;
        auto it = txid_index_.find(in.prevout.txid);
        if (it != txid_index_.end()) {
          TxIndex prev = it->second;
          TxView& funding = txs_[prev];
          if (in.prevout.index < funding.outputs.size()) {
            OutputView& spent = funding.outputs[in.prevout.index];
            if (spent.spent_by != kNoTx)
              throw ValidationError("view: double spend in stored chain");
            spent.spent_by = index;
            iv.addr = spent.addr;
            iv.value = spent.value;
            iv.prev_tx = prev;
            iv.prev_index = in.prevout.index;
          } else {
            throw ValidationError("view: input references bad output slot");
          }
        } else {
          throw ValidationError("view: input references unknown txid");
        }
        view.inputs.push_back(iv);
      }
    }

    view.outputs.reserve(tx.outputs.size());
    for (const TxOut& out : tx.outputs) {
      OutputView ov;
      ov.value = out.value;
      if (auto addr = classify_output(out.script_pubkey))
        ov.addr = book_.intern(*addr);
      view.outputs.push_back(ov);
    }

    txid_index_.emplace(view.txid, index);
    txs_.push_back(std::move(view));
  }
  ++block_count_;
}

void ChainView::finish() {
  first_seen_.assign(book_.size(), kNoTx);
  for (TxIndex t = 0; t < txs_.size(); ++t) {
    const TxView& tx = txs_[t];
    auto mark = [&](AddrId a) {
      if (a != kNoAddr && first_seen_[a] == kNoTx) first_seen_[a] = t;
    };
    for (const InputView& in : tx.inputs) mark(in.addr);
    for (const OutputView& out : tx.outputs) mark(out.addr);
  }
}

void ChainView::finish(Executor& exec) {
  if (exec.inline_mode()) {
    finish();
    return;
  }
  // Each shard scans a contiguous transaction range into its own
  // first-seen table; the merge takes, per address, the earliest
  // shard's entry — a min-reduction, so the result does not depend on
  // shard count or scheduling.
  std::size_t n_addr = book_.size();
  std::size_t n_tx = txs_.size();
  std::size_t shard_count = exec.worker_count();
  if (shard_count > n_tx) shard_count = n_tx == 0 ? 1 : n_tx;
  std::vector<std::vector<TxIndex>> local(shard_count);
  exec.parallel_for_each(0, shard_count, [&](std::size_t s) {
    std::vector<TxIndex>& seen = local[s];
    seen.assign(n_addr, kNoTx);
    std::size_t lo = n_tx * s / shard_count;
    std::size_t hi = n_tx * (s + 1) / shard_count;
    for (std::size_t t = lo; t < hi; ++t) {
      const TxView& tx = txs_[t];
      auto mark = [&](AddrId a) {
        if (a != kNoAddr && seen[a] == kNoTx)
          seen[a] = static_cast<TxIndex>(t);
      };
      for (const InputView& in : tx.inputs) mark(in.addr);
      for (const OutputView& out : tx.outputs) mark(out.addr);
    }
  });
  first_seen_.assign(n_addr, kNoTx);
  exec.parallel_for(0, n_addr, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t a = lo; a < hi; ++a)
      for (std::size_t s = 0; s < shard_count; ++s)
        if (local[s][a] != kNoTx) {
          first_seen_[a] = local[s][a];  // shards ascend in tx order
          break;
        }
  });
}

ChainView ChainView::build(const BlockStore& store) {
  ChainView view;
  {
    obs::Span scan("view.scan");
    for (std::size_t i = 0; i < store.count(); ++i) {
      Block block = store.read(i);
      view.add_block(block, static_cast<std::int32_t>(i));
    }
  }
  {
    obs::Span first_seen("view.first_seen");
    view.finish();
  }
  view.record_build_metrics();
  return view;
}

ChainView ChainView::build(const std::vector<Block>& blocks) {
  ChainView view;
  {
    obs::Span scan("view.scan");
    for (std::size_t i = 0; i < blocks.size(); ++i)
      view.add_block(blocks[i], static_cast<std::int32_t>(i));
  }
  {
    obs::Span first_seen("view.first_seen");
    view.finish();
  }
  view.record_build_metrics();
  return view;
}

namespace {

/// Pre-digested per-block data from the parallel scan: everything
/// expensive (deserialization, txid hashing, script classification,
/// shard interning) done, everything order-sensitive left for the
/// sequential assembly.
struct PreOutput {
  bool has_addr = false;
  ShardedAddressBook::Ref ref;
  Amount value = 0;
};

struct PreTx {
  Hash256 txid;
  bool coinbase = false;
  std::vector<OutPoint> prevouts;  // empty for coinbase
  std::vector<PreOutput> outputs;
};

struct PreBlock {
  Timestamp time = 0;
  std::vector<PreTx> txs;
};

}  // namespace

ChainView ChainView::build_parallel(
    std::size_t block_count,
    const std::function<Block(std::size_t)>& read_block, Executor& exec) {
  // Phase 1 (parallel): scan blocks into pre-digested form, interning
  // output addresses into hash shards keyed by (block, output-slot)
  // appearance ordinals. The "view.scan" span covers phases 1 + 2 so
  // the span tree matches the sequential build's.
  obs::Span scan_span("view.scan");
  ShardedAddressBook sharded;
  std::vector<PreBlock> pre(block_count);
  exec.parallel_for(0, block_count, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      Block block = read_block(b);
      PreBlock& pb = pre[b];
      pb.time = static_cast<Timestamp>(block.header.time);
      pb.txs.reserve(block.transactions.size());
      std::uint64_t slot = 0;  // output ordinal within the block
      for (const Transaction& tx : block.transactions) {
        PreTx pt;
        pt.txid = tx.txid();
        pt.coinbase = tx.is_coinbase();
        if (!pt.coinbase) {
          pt.prevouts.reserve(tx.inputs.size());
          for (const TxIn& in : tx.inputs) pt.prevouts.push_back(in.prevout);
        }
        pt.outputs.reserve(tx.outputs.size());
        for (const TxOut& out : tx.outputs) {
          PreOutput po;
          po.value = out.value;
          if (auto addr = classify_output(out.script_pubkey)) {
            std::uint64_t ordinal =
                (static_cast<std::uint64_t>(b) << 32) | slot;
            po.ref = sharded.intern(*addr, ordinal);
            po.has_addr = true;
          }
          ++slot;
          pt.outputs.push_back(po);
        }
        pb.txs.push_back(std::move(pt));
      }
    }
  });

  // Phase 2 (sequential, deterministic): assign dense AddrIds by first
  // appearance, then assemble the view in chain order, resolving each
  // input against the outputs seen so far — exactly the sequential
  // build's semantics, including its double-spend checks.
  ShardedAddressBook::Finalized fin = sharded.finalize();
  ChainView view;
  view.book_ = std::move(fin.book);
  for (std::size_t b = 0; b < block_count; ++b) {
    for (PreTx& pt : pre[b].txs) {
      TxIndex index = static_cast<TxIndex>(view.txs_.size());
      TxView tv;
      tv.txid = pt.txid;
      tv.height = static_cast<std::int32_t>(b);
      tv.time = pre[b].time;
      tv.coinbase = pt.coinbase;

      if (!tv.coinbase) {
        tv.inputs.reserve(pt.prevouts.size());
        for (const OutPoint& prevout : pt.prevouts) {
          InputView iv;
          auto it = view.txid_index_.find(prevout.txid);
          if (it != view.txid_index_.end()) {
            TxIndex prev = it->second;
            TxView& funding = view.txs_[prev];
            if (prevout.index < funding.outputs.size()) {
              OutputView& spent = funding.outputs[prevout.index];
              if (spent.spent_by != kNoTx)
                throw ValidationError("view: double spend in stored chain");
              spent.spent_by = index;
              iv.addr = spent.addr;
              iv.value = spent.value;
              iv.prev_tx = prev;
              iv.prev_index = prevout.index;
            } else {
              throw ValidationError("view: input references bad output slot");
            }
          } else {
            throw ValidationError("view: input references unknown txid");
          }
          tv.inputs.push_back(iv);
        }
      }

      tv.outputs.reserve(pt.outputs.size());
      for (const PreOutput& po : pt.outputs) {
        OutputView ov;
        ov.value = po.value;
        if (po.has_addr) ov.addr = fin.id(po.ref);
        tv.outputs.push_back(ov);
      }

      view.txid_index_.emplace(tv.txid, index);
      view.txs_.push_back(std::move(tv));
    }
    ++view.block_count_;
  }

  scan_span.close();

  // Phase 3 (parallel): first-seen table via sharded min-reduction.
  {
    obs::Span first_seen("view.first_seen");
    view.finish(exec);
  }
  view.record_build_metrics();
  return view;
}

void ChainView::record_build_metrics() const {
#ifndef FISTFUL_NO_OBS
  const ViewMetrics& m = ViewMetrics::get();
  m.blocks.add(block_count_);
  m.txs.add(txs_.size());
  m.addresses.add(book_.size());
  for (const TxView& tx : txs_) {
    m.tx_inputs.observe(static_cast<double>(tx.inputs.size()));
    m.tx_outputs.observe(static_cast<double>(tx.outputs.size()));
  }
#endif
}

ChainView ChainView::build(const BlockStore& store, Executor& exec) {
  if (exec.inline_mode()) return build(store);
  return build_parallel(
      store.count(), [&store](std::size_t i) { return store.read(i); }, exec);
}

ChainView ChainView::build(const std::vector<Block>& blocks, Executor& exec) {
  if (exec.inline_mode()) return build(blocks);
  return build_parallel(
      blocks.size(), [&blocks](std::size_t i) { return blocks[i]; }, exec);
}

const TxView& ChainView::tx(TxIndex i) const {
  if (i >= txs_.size()) throw UsageError("ChainView::tx: index out of range");
  return txs_[i];
}

TxIndex ChainView::find_tx(const Hash256& txid) const noexcept {
  auto it = txid_index_.find(txid);
  return it == txid_index_.end() ? kNoTx : it->second;
}

TxIndex ChainView::first_seen(AddrId addr) const noexcept {
  if (addr == kNoAddr || addr >= first_seen_.size()) return kNoTx;
  return first_seen_[addr];
}

}  // namespace fist
