#include "chain/chainstate.hpp"

#include "chain/interpreter.hpp"
#include "util/error.hpp"

namespace fist {

void ChainState::connect(const Block& block) {
  const int new_height = height() + 1;

  // Header linkage.
  const Hash256 expected_prev =
      hashes_.empty() ? Hash256{} : hashes_.back();
  if (!(block.header.prev_hash == expected_prev))
    throw ValidationError("block does not extend the tip");

  if (params_.check_pow) {
    if (block.header.bits != params_.expected_bits)
      throw ValidationError("unexpected difficulty bits");
    if (!check_proof_of_work(block.header.hash(), block.header.bits))
      throw ValidationError("proof of work does not meet target");
  }
  if (params_.check_merkle &&
      !(block.compute_merkle_root() == block.header.merkle_root))
    throw ValidationError("merkle root mismatch");

  if (block.transactions.empty())
    throw ValidationError("block has no transactions");
  if (!block.transactions[0].is_coinbase())
    throw ValidationError("first transaction is not a coinbase");

  // Stage the block's effects so a failure mid-block leaves no state
  // change: collect spends first, then verify, then apply.
  Amount fees = 0;
  std::vector<std::pair<OutPoint, Coin>> to_add;
  std::vector<OutPoint> to_spend;

  for (std::size_t t = 1; t < block.transactions.size(); ++t) {
    const Transaction& tx = block.transactions[t];
    if (tx.is_coinbase())
      throw ValidationError("unexpected extra coinbase");
    Amount in_value = 0;
    for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
      const TxIn& in = tx.inputs[i];
      Script spent_script;
      const Coin* coin = utxo_.find(in.prevout);
      if (coin == nullptr) {
        // Distinguish an intra-block spend (allowed) from a true miss.
        bool found = false;
        for (auto& [op, staged] : to_add) {
          if (op == in.prevout) {
            in_value = add_money(in_value, staged.value);
            spent_script = staged.script_pubkey;
            found = true;
            break;
          }
        }
        if (!found)
          throw ValidationError("input spends unknown or spent output");
        // Mark the staged coin consumed by removing it from to_add.
        std::erase_if(to_add, [&](const auto& p) {
          return p.first == in.prevout;
        });
      } else {
        for (const OutPoint& op : to_spend)
          if (op == in.prevout)
            throw ValidationError("double spend within block");
        if (coin->coinbase &&
            new_height - coin->height < params_.coinbase_maturity)
          throw ValidationError("premature spend of coinbase output");
        in_value = add_money(in_value, coin->value);
        spent_script = coin->script_pubkey;
        to_spend.push_back(in.prevout);
      }
      if (params_.verify_scripts) {
        TransactionSignatureChecker checker(tx, i);
        ScriptError err =
            verify_script(in.script_sig, spent_script, checker);
        if (err != ScriptError::Ok)
          throw ValidationError(std::string("script verification failed: ") +
                                script_error_name(err));
      }
    }
    Amount out_value = tx.value_out();
    if (out_value > in_value)
      throw ValidationError("transaction creates money (negative fee)");
    fees = add_money(fees, in_value - out_value);

    Hash256 txid = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      to_add.emplace_back(
          OutPoint{txid, i},
          Coin{tx.outputs[i].value, tx.outputs[i].script_pubkey, new_height,
               false});
    }
  }

  // Coinbase value rule.
  const Transaction& coinbase = block.transactions[0];
  Amount subsidy = block_subsidy(new_height, params_.halving_interval);
  Amount reward = coinbase.value_out();
  if (reward > add_money(subsidy, fees))
    throw ValidationError("coinbase pays more than subsidy plus fees");

  // All checks passed; apply.
  for (const OutPoint& op : to_spend) utxo_.spend(op);
  for (auto& [op, coin] : to_add) utxo_.add(op, std::move(coin));
  Hash256 cb_txid = coinbase.txid();
  for (std::uint32_t i = 0; i < coinbase.outputs.size(); ++i) {
    utxo_.add(OutPoint{cb_txid, i},
              Coin{coinbase.outputs[i].value,
                   coinbase.outputs[i].script_pubkey, new_height, true});
  }

  Hash256 block_hash = block.header.hash();
  hashes_.push_back(block_hash);
  height_of_.emplace(block_hash, new_height);
  stats_.transactions += block.transactions.size();
  stats_.coinbase_transactions += 1;
  stats_.total_fees = add_money(stats_.total_fees, fees);
  stats_.minted = add_money(stats_.minted, reward);
}

const Hash256& ChainState::block_hash(int h) const {
  if (h < 0 || h >= static_cast<int>(hashes_.size()))
    throw UsageError("ChainState::block_hash: height out of range");
  return hashes_[static_cast<std::size_t>(h)];
}

int ChainState::find_height(const Hash256& hash) const noexcept {
  auto it = height_of_.find(hash);
  return it == height_of_.end() ? -1 : it->second;
}

}  // namespace fist
