#include "chain/pow.hpp"

namespace fist {

std::optional<U256> expand_compact(std::uint32_t bits) noexcept {
  std::uint32_t exponent = bits >> 24;
  std::uint32_t mantissa = bits & 0x007fffff;
  if (bits & 0x00800000) return std::nullopt;  // negative
  if (mantissa == 0) return U256();
  U256 target;
  if (exponent <= 3) {
    target = U256(mantissa >> (8 * (3 - exponent)));
  } else {
    unsigned shift = 8 * (exponent - 3);
    if (shift >= 256) return std::nullopt;  // overflow
    // Overflow also if mantissa bits would leave the top.
    U256 m(mantissa);
    if (m.bit_length() + shift > 256) return std::nullopt;
    target = shl(m, shift);
  }
  return target;
}

std::uint32_t to_compact(const U256& target) noexcept {
  unsigned bits = target.bit_length();
  if (bits == 0) return 0;
  unsigned size = (bits + 7) / 8;
  std::uint32_t mantissa;
  if (size <= 3) {
    mantissa = static_cast<std::uint32_t>(target.w[0] << (8 * (3 - size)));
  } else {
    U256 shifted = shr(target, 8 * (size - 3));
    mantissa = static_cast<std::uint32_t>(shifted.w[0]);
  }
  // Avoid setting the sign bit: shift mantissa down, bump exponent.
  if (mantissa & 0x00800000) {
    mantissa >>= 8;
    ++size;
  }
  return (static_cast<std::uint32_t>(size) << 24) | mantissa;
}

std::uint32_t next_work_required(std::uint32_t current_bits,
                                 std::int64_t actual_timespan,
                                 std::int64_t target_timespan,
                                 std::uint32_t limit_bits) noexcept {
  if (target_timespan <= 0) return current_bits;
  // Bitcoin clamps the adjustment to a factor of 4 either way.
  std::int64_t lo = target_timespan / 4;
  std::int64_t hi = target_timespan * 4;
  std::int64_t span = actual_timespan;
  if (span < lo) span = lo;
  if (span > hi) span = hi;

  std::optional<U256> target = expand_compact(current_bits);
  std::optional<U256> limit = expand_compact(limit_bits);
  if (!target || !limit) return current_bits;

  // new_target = target * span / target_timespan, in 512-bit space so
  // nothing overflows.
  U512 wide = mul_wide(*target, U256(static_cast<std::uint64_t>(span)));
  // Divide the 512-bit product by target_timespan (schoolbook long
  // division by a 64-bit divisor, top limb first). A nonzero quotient
  // digit above the low 256 bits means the result exceeds any valid
  // target; clip to the limit.
  U256 quotient;
  unsigned __int128 rem = 0;
  std::uint64_t divisor = static_cast<std::uint64_t>(target_timespan);
  bool overflow = false;
  for (int i = 7; i >= 0; --i) {
    rem = (rem << 64) | wide.w[i];
    std::uint64_t digit = static_cast<std::uint64_t>(rem / divisor);
    rem %= divisor;
    if (i >= 4) {
      if (digit != 0) overflow = true;
    } else {
      quotient.w[static_cast<std::size_t>(i)] = digit;
    }
  }

  if (overflow || cmp(quotient, *limit) > 0) quotient = *limit;
  if (quotient.is_zero()) quotient = U256(1);
  return to_compact(quotient);
}

bool check_proof_of_work(const Hash256& hash, std::uint32_t bits) noexcept {
  std::optional<U256> target = expand_compact(bits);
  if (!target || target->is_zero()) return false;
  // Block hashes compare as little-endian 256-bit integers.
  std::array<std::uint8_t, 32> be;
  for (int i = 0; i < 32; ++i) be[static_cast<std::size_t>(i)] =
      hash.data()[31 - i];
  U256 value = U256::from_be_bytes(ByteView(be));
  return cmp(value, *target) <= 0;
}

}  // namespace fist
