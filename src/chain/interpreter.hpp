// interpreter.hpp — a Bitcoin script interpreter for the standard 2013
// repertoire.
//
// Executes scriptSig ‖ scriptPubKey as a stack machine, with
// CHECKSIG-family opcodes delegating to a SignatureChecker (the
// transaction-bound checker computes the legacy sighash and verifies
// real ECDSA). Supports the templates in circulation during the
// paper's study window: P2PK, P2PKH, bare multisig, and P2SH.
//
// With ChainParams::verify_scripts set, ChainState runs this for every
// input while connecting blocks — full end-to-end validation when the
// chain was produced with real keys (sim::KeyMode::Real).
#pragma once

#include <optional>
#include <vector>

#include "chain/transaction.hpp"
#include "script/script.hpp"

namespace fist {

/// Why script execution failed (ScriptError::Ok on success).
enum class ScriptError {
  Ok,
  EvalFalse,         ///< final stack empty or top element false
  BadOpcode,         ///< opcode outside the supported repertoire
  StackUnderflow,
  EqualVerifyFailed,
  CheckSigFailed,    ///< *VERIFY variant failed
  CheckMultisigFailed,
  OpReturn,          ///< provably unspendable output
  SigPushOnly,       ///< scriptSig must be push-only
  BadRedeemScript,   ///< P2SH redeem script failed to parse
  MalformedScript,   ///< truncated push etc.
};

/// Printable name for a ScriptError.
const char* script_error_name(ScriptError e) noexcept;

/// Verifies signatures for CHECKSIG-family opcodes.
class SignatureChecker {
 public:
  virtual ~SignatureChecker() = default;

  /// `sig_with_hashtype` is the DER signature with the trailing
  /// hash-type byte; `script_code` is the script being executed.
  virtual bool check_sig(ByteView sig_with_hashtype, ByteView pubkey,
                         const Script& script_code) const = 0;
};

/// A checker that accepts nothing (for parsing-only evaluation).
class NullSignatureChecker final : public SignatureChecker {
 public:
  bool check_sig(ByteView, ByteView, const Script&) const override {
    return false;
  }
};

/// Binds signature checking to one input of a transaction using the
/// legacy (pre-segwit) SIGHASH_ALL algorithm.
class TransactionSignatureChecker final : public SignatureChecker {
 public:
  TransactionSignatureChecker(const Transaction& tx, std::size_t input)
      : tx_(&tx), input_(input) {}

  bool check_sig(ByteView sig_with_hashtype, ByteView pubkey,
                 const Script& script_code) const override;

 private:
  const Transaction* tx_;
  std::size_t input_;
};

/// Evaluates one script over `stack`. Returns ScriptError::Ok if
/// execution completed (the caller judges the final stack).
ScriptError eval_script(std::vector<Bytes>& stack, const Script& script,
                        const SignatureChecker& checker);

/// Full input verification: runs scriptSig then scriptPubKey, with the
/// standard P2SH special case. Returns ScriptError::Ok iff the spend
/// is authorized.
ScriptError verify_script(const Script& script_sig,
                          const Script& script_pubkey,
                          const SignatureChecker& checker);

}  // namespace fist
