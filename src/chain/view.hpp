// view.hpp — the flattened, analysis-friendly chain representation.
//
// ChainView turns a stored block chain into the structure every
// forensic pass consumes: transactions in global chronological order,
// with each input resolved to the (address, value) it spends and each
// output annotated with the transaction that later spends it. Addresses
// are interned to dense AddrIds. This is fistful's equivalent of the
// paper's "transaction graph".
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "chain/addrbook.hpp"
#include "chain/blockstore.hpp"
#include "chain/ingest.hpp"
#include "core/executor.hpp"
#include "util/amount.hpp"
#include "util/timeutil.hpp"

namespace fist {

/// Global transaction index within a ChainView.
using TxIndex = std::uint32_t;

/// Sentinel for "no transaction" (unspent output / coinbase input).
inline constexpr TxIndex kNoTx = 0xffffffffu;

/// A resolved transaction input.
struct InputView {
  AddrId addr = kNoAddr;   ///< spender address (kNoAddr if unextractable)
  Amount value = 0;        ///< value consumed
  TxIndex prev_tx = kNoTx; ///< view index of the funding transaction
  std::uint32_t prev_index = 0;  ///< output slot in the funding tx
};

/// A transaction output with forward spend link.
struct OutputView {
  AddrId addr = kNoAddr;     ///< recipient address (kNoAddr if none)
  Amount value = 0;
  TxIndex spent_by = kNoTx;  ///< view index of the spending tx, if any
};

/// One transaction in the flattened chain.
struct TxView {
  Hash256 txid;
  std::int32_t height = 0;
  Timestamp time = 0;
  bool coinbase = false;
  std::vector<InputView> inputs;
  std::vector<OutputView> outputs;

  /// Sum of resolved input values (0 for a coinbase).
  Amount value_in() const noexcept;

  /// Sum of output values.
  Amount value_out() const noexcept;

  /// Miner fee (value_in - value_out; 0 for coinbase).
  Amount fee() const noexcept {
    return coinbase ? 0 : value_in() - value_out();
  }
};

/// The flattened chain: ordered transactions + interned addresses.
class ChainView {
 public:
  /// Builds a view by scanning `store` from record 0. Blocks must be in
  /// chain order (as ChainState would have connected them).
  static ChainView build(const BlockStore& store);

  /// Builds from already-deserialized blocks (same ordering rules).
  static ChainView build(const std::vector<Block>& blocks);

  /// Parallel builds: per-block deserialization, txid hashing, script
  /// classification, and address interning fan out over `exec`; input
  /// resolution and dense-id assignment run in a deterministic finalize
  /// order. Bit-identical to the sequential build for every worker
  /// count (an exec with worker_count() == 1 takes the sequential
  /// path unchanged).
  static ChainView build(const BlockStore& store, Executor& exec);
  static ChainView build(const std::vector<Block>& blocks, Executor& exec);

  /// Knobs for the out-of-core (windowed) build.
  struct BuildOptions {
    /// Blocks decoded and held in memory at once. The store is
    /// consumed window by window: each window is pre-digested in
    /// parallel (deserialization, txid hashing, script classification)
    /// into a columnar staging area, then assembled sequentially in
    /// chain order — so peak memory holds one window of raw blocks
    /// plus the growing view, never the whole decoded chain. 0 takes
    /// the legacy whole-store paths. Bit-identical to the in-memory
    /// build at every window size and worker count.
    std::uint32_t window_blocks = 0;
    RecoveryPolicy recovery = RecoveryPolicy::Strict;
    IngestReport* report = nullptr;
  };

  /// Out-of-core build: windowed/bounded-memory scan over `store`
  /// (see BuildOptions::window_blocks). The workhorse behind
  /// bench/table_clusters_large and the `--window` pipeline option;
  /// differential-tested against the in-memory build in
  /// tests/test_view_outofcore.cpp.
  static ChainView build_windowed(const BlockStore& store, Executor& exec,
                                  const BuildOptions& options);

  /// Policy-aware build. Strict reproduces the historical behaviour:
  /// the first record I/O fault (IoError), malformed record
  /// (ParseError) or unresolvable transaction (ValidationError)
  /// aborts the build — deterministically the lowest-index failure,
  /// even on the parallel path. Lenient quarantines the failing block
  /// record or transaction into `report` (plus the
  /// `ingest.quarantined.*` metrics) and continues; surviving output
  /// is bit-identical to a build over a store holding only the intact
  /// records, at any worker count. Heights are compacted over the
  /// surviving blocks, exactly as a filtered store would number them.
  static ChainView build(const BlockStore& store, Executor& exec,
                         RecoveryPolicy policy,
                         IngestReport* report = nullptr);

  /// Extends this view in place with a block delta (the incremental
  /// ingest path behind core/live_index). Each block is ingested
  /// through exactly the sequential build's ingest_block, then the
  /// first-seen table is extended by scanning only the appended
  /// transactions — valid because first appearances are stable under
  /// append (an address already seen can only be seen *again*), so the
  /// result is bit-identical to a batch build over prefix+delta.
  /// Returns the index of the first appended transaction (== the old
  /// tx_count()). In lenient mode failing blocks/transactions
  /// quarantine into `report` as in build(); in strict mode the first
  /// failure throws and leaves the view partially extended — callers
  /// that need atomicity (LiveIndex does) must discard the instance
  /// and rebuild from durable state.
  TxIndex apply_delta(const std::vector<Block>& blocks,
                      RecoveryPolicy policy = RecoveryPolicy::Strict,
                      IngestReport* report = nullptr);

  /// Checkpoint serialization (see core/checkpoint.hpp): a compact
  /// binary image of the flattened chain — addresses in dense-id
  /// order, transactions with resolved inputs and spend links. Not a
  /// consensus format. deserialize() rebuilds derived state
  /// (txid index, first-seen table) and records no build metrics.
  Bytes serialize() const;
  static ChainView deserialize(ByteView raw);

  const std::vector<TxView>& txs() const noexcept { return txs_; }
  const TxView& tx(TxIndex i) const;
  std::size_t tx_count() const noexcept { return txs_.size(); }

  /// Address interning table (shared with every downstream pass).
  const AddressBook& addresses() const noexcept { return book_; }
  std::size_t address_count() const noexcept { return book_.size(); }

  /// View index of a txid, or kNoTx.
  TxIndex find_tx(const Hash256& txid) const noexcept;

  /// Index of the first transaction in which `addr` appears (as input
  /// or output); kNoTx for unknown ids.
  TxIndex first_seen(AddrId addr) const noexcept;

  /// Number of distinct blocks scanned.
  std::size_t block_count() const noexcept { return block_count_; }

 private:
  /// Ingests one decoded block at height == block_count_. In lenient
  /// mode an unresolvable transaction is quarantined into `report`
  /// (its outputs stay interned — the parallel path interns during
  /// its scan phase, and dense-id assignment must not depend on the
  /// execution path); in strict mode it throws ValidationError.
  void ingest_block(const Block& block, std::uint64_t record,
                    RecoveryPolicy policy, IngestReport* report);

  /// Appends one pre-digested transaction whose outputs are already
  /// interned to dense ids (tv.inputs empty), resolving `prevouts`
  /// against the transactions appended so far — the shared sequential
  /// assembly step of the parallel and windowed builds, with exactly
  /// ingest_block's double-spend checks and quarantine behaviour.
  /// Returns false when the transaction was quarantined (lenient).
  bool append_tx(TxView&& tv, const OutPoint* prevouts,
                 std::size_t n_inputs, std::uint64_t record,
                 std::uint32_t ordinal, RecoveryPolicy policy,
                 IngestReport* report);
  void finish();
  void finish(Executor& exec);

  /// Reports build totals (blocks/txs/interned addresses) and the
  /// tx-shape histograms into the global MetricsRegistry; script-class
  /// counts are recorded during the scan itself. All of these are
  /// deterministic across thread counts. No-op under FISTFUL_NO_OBS.
  void record_build_metrics() const;

  static ChainView build(const BlockStore& store, RecoveryPolicy policy,
                         IngestReport* report);

  /// Shared parallel-build driver: `read_block(i)` must be safe to
  /// call concurrently for distinct indices.
  static ChainView build_parallel(
      std::size_t block_count,
      const std::function<Block(std::size_t)>& read_block, Executor& exec,
      RecoveryPolicy policy, IngestReport* report);

  AddressBook book_;
  std::vector<TxView> txs_;
  std::unordered_map<Hash256, TxIndex> txid_index_;
  std::vector<TxIndex> first_seen_;
  std::size_t block_count_ = 0;
};

}  // namespace fist
