#include "cluster/heuristic1.hpp"

namespace fist {

H1Stats apply_heuristic1(const ChainView& view, UnionFind& uf) {
  H1Stats stats;
  uf.grow(view.address_count());
  for (const TxView& tx : view.txs()) {
    if (tx.coinbase || tx.inputs.size() < 2) continue;
    AddrId first = kNoAddr;
    bool merged_any = false;
    for (const InputView& in : tx.inputs) {
      if (in.addr == kNoAddr) continue;
      if (first == kNoAddr) {
        first = in.addr;
        continue;
      }
      if (uf.unite(first, in.addr)) {
        ++stats.links;
        merged_any = true;
      }
    }
    if (merged_any) ++stats.multi_input_txs;
  }
  return stats;
}

UnionFind heuristic1(const ChainView& view, H1Stats* stats) {
  UnionFind uf(view.address_count());
  H1Stats s = apply_heuristic1(view, uf);
  if (stats != nullptr) *stats = s;
  return uf;
}

}  // namespace fist
