#include "cluster/heuristic1.hpp"

namespace fist {

namespace {

/// Merges one transaction's input star into `uf`; updates `stats` and
/// returns true iff any union succeeded. The single shared definition
/// of "processing a transaction" keeps the sequential pass, the shard
/// passes, and the replay in lockstep.
bool h1_process_tx(const TxView& tx, UnionFind& uf, H1Stats* stats) {
  if (tx.coinbase || tx.inputs.size() < 2) return false;
  AddrId first = kNoAddr;
  bool merged_any = false;
  for (const InputView& in : tx.inputs) {
    if (in.addr == kNoAddr) continue;
    if (first == kNoAddr) {
      first = in.addr;
      continue;
    }
    if (uf.unite(first, in.addr)) {
      if (stats != nullptr) ++stats->links;
      merged_any = true;
    }
  }
  if (merged_any && stats != nullptr) ++stats->multi_input_txs;
  return merged_any;
}

}  // namespace

H1Stats apply_heuristic1(const ChainView& view, UnionFind& uf) {
  H1Stats stats;
  uf.grow(view.address_count());
  for (const TxView& tx : view.txs()) h1_process_tx(tx, uf, &stats);
  return stats;
}

H1Stats apply_heuristic1(const ChainView& view, UnionFind& uf,
                         Executor& exec) {
  if (exec.inline_mode()) return apply_heuristic1(view, uf);
  uf.grow(view.address_count());
  std::size_t n_tx = view.txs().size();
  if (n_tx == 0) return H1Stats{};

  // One shard per lane: each shard carries a dense forest over the
  // whole address space, so shard count trades memory for parallelism.
  std::size_t shard_count = exec.worker_count();
  if (shard_count > n_tx) shard_count = n_tx;

  // Shard pass (parallel): find each shard's connectivity-adding txs.
  // A tx whose inputs were already joined by earlier txs of the same
  // shard can never merge anything downstream, so only candidates need
  // replaying.
  std::vector<std::vector<TxIndex>> candidates(shard_count);
  exec.parallel_for_each(0, shard_count, [&](std::size_t s) {
    UnionFind local(view.address_count());
    std::size_t lo = n_tx * s / shard_count;
    std::size_t hi = n_tx * (s + 1) / shard_count;
    for (std::size_t t = lo; t < hi; ++t)
      if (h1_process_tx(view.txs()[t], local, nullptr))
        candidates[s].push_back(static_cast<TxIndex>(t));
  });

  // Replay (sequential, chain order): shards cover ascending ranges,
  // so concatenating candidate lists preserves transaction order and
  // the replay sees exactly the sequential pass's union sequence.
  H1Stats stats;
  for (std::size_t s = 0; s < shard_count; ++s)
    for (TxIndex t : candidates[s]) h1_process_tx(view.txs()[t], uf, &stats);
  return stats;
}

UnionFind heuristic1(const ChainView& view, H1Stats* stats) {
  UnionFind uf(view.address_count());
  H1Stats s = apply_heuristic1(view, uf);
  if (stats != nullptr) *stats = s;
  return uf;
}

}  // namespace fist
