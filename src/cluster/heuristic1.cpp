#include "cluster/heuristic1.hpp"

#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"

namespace fist {

namespace {

/// H1 merge counters. `h1.links` / `h1.merged_txs` are deterministic
/// (the replay reproduces the sequential union sequence exactly);
/// the candidate total depends on sharding, so it lives under `exec.`.
struct H1Metrics {
  obs::Counter links;
  obs::Counter merged_txs;
  obs::Counter candidates;

  static const H1Metrics& get() {
    static const H1Metrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      H1Metrics m;
      m.links = r.counter("h1.links");
      m.merged_txs = r.counter("h1.merged_txs");
      m.candidates = r.counter("exec.h1_candidates");
      return m;
    }();
    return metrics;
  }
};

void record_h1_stats(const H1Stats& stats) {
  const H1Metrics& m = H1Metrics::get();
  m.links.add(stats.links);
  m.merged_txs.add(stats.multi_input_txs);
}

}  // namespace

bool h1_process_tx(const TxView& tx, UnionFind& uf, H1Stats* stats) {
  if (tx.coinbase || tx.inputs.size() < 2) return false;
  AddrId first = kNoAddr;
  bool merged_any = false;
  for (const InputView& in : tx.inputs) {
    if (in.addr == kNoAddr) continue;
    if (first == kNoAddr) {
      first = in.addr;
      continue;
    }
    if (uf.unite(first, in.addr)) {
      if (stats != nullptr) ++stats->links;
      merged_any = true;
    }
  }
  if (merged_any && stats != nullptr) ++stats->multi_input_txs;
  return merged_any;
}

H1Stats apply_heuristic1(const ChainView& view, UnionFind& uf) {
  H1Stats stats;
  uf.grow(view.address_count());
  // Progress ticks in chunks — a per-tx atomic would be pure overhead
  // on a loop this tight.
  obs::ProgressStage progress =
      obs::ProgressBoard::global().begin_stage("h1.txs", view.txs().size());
  constexpr std::size_t kChunk = 65536;
  std::size_t done = 0;
  for (const TxView& tx : view.txs()) {
    h1_process_tx(tx, uf, &stats);
    if (++done % kChunk == 0) {
      progress.advance(kChunk);
      obs::progress_console_tick();
    }
  }
  progress.advance(done % kChunk);
  progress.finish();
  record_h1_stats(stats);
  return stats;
}

H1Stats apply_heuristic1(const ChainView& view, UnionFind& uf,
                         Executor& exec) {
  if (exec.inline_mode()) return apply_heuristic1(view, uf);
  uf.grow(view.address_count());
  std::size_t n_tx = view.txs().size();
  if (n_tx == 0) return H1Stats{};

  // One shard per lane: each shard carries a dense forest over the
  // whole address space, so shard count trades memory for parallelism.
  std::size_t shard_count = exec.worker_count();
  if (shard_count > n_tx) shard_count = n_tx;

  // Shard pass (parallel): find each shard's connectivity-adding txs.
  // A tx whose inputs were already joined by earlier txs of the same
  // shard can never merge anything downstream, so only candidates need
  // replaying.
  obs::ProgressStage progress =
      obs::ProgressBoard::global().begin_stage("h1.txs", n_tx);
  std::vector<std::vector<TxIndex>> candidates(shard_count);
  exec.parallel_for_each(0, shard_count, [&](std::size_t s) {
    UnionFind local(view.address_count());
    std::size_t lo = n_tx * s / shard_count;
    std::size_t hi = n_tx * (s + 1) / shard_count;
    for (std::size_t t = lo; t < hi; ++t)
      if (h1_process_tx(view.txs()[t], local, nullptr))
        candidates[s].push_back(static_cast<TxIndex>(t));
    progress.advance(hi - lo);  // one tick per shard, from any worker
    obs::progress_console_tick();
  });

  // Replay (sequential, chain order): shards cover ascending ranges,
  // so concatenating candidate lists preserves transaction order and
  // the replay sees exactly the sequential pass's union sequence.
  H1Stats stats;
  std::uint64_t candidate_total = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    candidate_total += candidates[s].size();
    for (TxIndex t : candidates[s]) h1_process_tx(view.txs()[t], uf, &stats);
  }
  H1Metrics::get().candidates.add(candidate_total);
  progress.finish();
  record_h1_stats(stats);
  return stats;
}

UnionFind heuristic1(const ChainView& view, H1Stats* stats) {
  UnionFind uf(view.address_count());
  H1Stats s = apply_heuristic1(view, uf);
  if (stats != nullptr) *stats = s;
  return uf;
}

}  // namespace fist
