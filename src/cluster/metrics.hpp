// metrics.hpp — clustering quality against ground truth.
//
// The paper could only estimate Heuristic 2's error via time-stepping;
// our simulator journals true ownership, so we can also score the
// clusterings exactly. Pairwise precision/recall are computed in closed
// form from the cluster×owner contingency counts.
#pragma once

#include <cstdint>
#include <span>

#include "core/executor.hpp"

namespace fist {

/// Pairwise clustering scores. A "pair" is an unordered address pair;
/// precision asks "of pairs we merged, how many share a true owner?",
/// recall asks "of pairs sharing a true owner, how many did we merge?".
struct PairwiseScores {
  double precision = 0;
  double recall = 0;
  std::uint64_t predicted_pairs = 0;
  std::uint64_t true_pairs = 0;
  std::uint64_t agreeing_pairs = 0;

  double f1() const noexcept {
    double p = precision, r = recall;
    return (p + r) == 0 ? 0 : 2 * p * r / (p + r);
  }
};

/// Scores a predicted clustering against true owners. Both spans are
/// indexed by AddrId; `truth[a]` is an arbitrary owner id. Addresses
/// with owner == kUnknownOwner are excluded.
inline constexpr std::uint32_t kUnknownOwner = 0xffffffffu;

PairwiseScores pairwise_scores(std::span<const std::uint32_t> predicted,
                               std::span<const std::uint32_t> truth);

/// Parallel variant: workers count contingency cells over disjoint
/// address ranges into worker-local tables, which are sum-merged before
/// the closed-form score computation. Counts are integer sums, so the
/// result is bit-identical to the sequential variant for every worker
/// count.
PairwiseScores pairwise_scores(std::span<const std::uint32_t> predicted,
                               std::span<const std::uint32_t> truth,
                               Executor& exec);

}  // namespace fist
