// clustering.hpp — materialized clusterings and their statistics.
//
// A UnionFind is a working structure; Clustering freezes it into dense
// cluster ids with sizes, which is what naming, balance tracking and
// the super-cluster diagnostics consume.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/view.hpp"
#include "cluster/unionfind.hpp"
#include "tag/naming.hpp"

namespace fist {

/// A frozen address → cluster assignment.
class Clustering {
 public:
  /// Extracts dense cluster ids from `uf` (cluster 0..k-1 numbered by
  /// first-member order, which is deterministic).
  static Clustering from_union_find(UnionFind& uf);

  /// Cluster of an address.
  ClusterId cluster_of(AddrId a) const { return assignment_[a]; }

  /// Address count of a cluster.
  std::uint32_t size_of(ClusterId c) const { return sizes_[c]; }

  std::size_t cluster_count() const noexcept { return sizes_.size(); }
  std::size_t address_count() const noexcept { return assignment_.size(); }

  const std::vector<ClusterId>& assignment() const noexcept {
    return assignment_;
  }
  const std::vector<std::uint32_t>& sizes() const noexcept { return sizes_; }

  /// The largest cluster (id, size) — the super-cluster detector's
  /// first line of evidence.
  std::pair<ClusterId, std::uint32_t> largest() const;

  /// Number of distinct clusters after identifying those that share a
  /// service name under `naming` (the paper's "collapse via tags" step:
  /// 20 Mt. Gox clusters count once).
  std::size_t distinct_after_naming(const ClusterNaming& naming) const;

 private:
  std::vector<ClusterId> assignment_;
  std::vector<std::uint32_t> sizes_;
};

/// Upper bound on user count following §4.1: clusters from spending
/// activity plus "sink" addresses that never spent (each counted as a
/// potential distinct user).
std::uint64_t user_upper_bound(const ChainView& view,
                               const Clustering& clustering);

}  // namespace fist
