#include "cluster/incremental.hpp"

#include <algorithm>

#include "core/obs/metrics.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace fist {

namespace {

constexpr std::uint32_t kSnapshotVersion = 1;

/// Delta-path counters. All deterministic: the incremental scan is
/// sequential, and the touched set is a pure function of the view's
/// growth history.
struct DeltaMetrics {
  obs::Counter reevaluated;
  obs::Counter label_flips;
  obs::Counter final_rebuilds;

  static const DeltaMetrics& get() {
    static const DeltaMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      DeltaMetrics m;
      m.reevaluated = r.counter("delta.reevaluated");
      m.label_flips = r.counter("delta.label_flips");
      m.final_rebuilds = r.counter("delta.final_rebuilds");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

/// h2_decide() context answering prefix/future queries by binary
/// search over the incremental receipt indices — semantically
/// identical to the batch scan's running arrays at transaction `t`.
struct IncrementalClusterer::TxCtx {
  const IncrementalClusterer* c;
  TxIndex t;

  std::uint32_t receipts_before(AddrId a) const {
    const std::vector<TxIndex>& list = c->receipt_at_[a];
    return static_cast<std::uint32_t>(
        std::lower_bound(list.begin(), list.end(), t) - list.begin());
  }
  bool was_self_change(AddrId a) const {
    // Marks from transaction t itself (or later) must not count; the
    // batch scan applies marks only after the decision.
    return c->self_change_first_[a] < t;
  }
  TxIndex next_real_receipt(AddrId a, TxIndex at) const {
    const std::vector<TxIndex>& list = c->receipt_at_[a];
    auto it = std::upper_bound(list.begin(), list.end(), at);
    for (; it != list.end(); ++it) {
      std::size_t idx = static_cast<std::size_t>(it - list.begin());
      if (c->options_.exempt_dice_rebounds && c->receipt_dice_[a][idx] != 0)
        continue;
      return *it;
    }
    return kNoTx;
  }
};

IncrementalClusterer::IncrementalClusterer(H2Options options,
                                           std::vector<Address> dice_addresses)
    : options_(options), dice_pending_(std::move(dice_addresses)) {}

void IncrementalClusterer::grow_to(const ChainView& view) {
  std::size_t n_addr = view.address_count();
  std::size_t n_tx = view.tx_count();
  receipt_at_.resize(n_addr);
  receipt_dice_.resize(n_addr);
  self_change_first_.resize(n_addr, kNoTx);
  outcome_.resize(n_tx, H2Outcome::kNoCandidate);
  change_of_tx_.resize(n_tx, kNoAddr);
  h1_uf_.grow(n_addr);
  final_uf_.grow(n_addr);
}

void IncrementalClusterer::resolve_pending_dice(const ChainView& view) {
  if (dice_pending_.empty()) return;
  std::vector<Address> still_pending;
  for (const Address& a : dice_pending_) {
    if (auto id = view.addresses().find(a))
      dice_ids_.insert(*id);
    else
      still_pending.push_back(a);
  }
  dice_pending_ = std::move(still_pending);
}

void IncrementalClusterer::ingest_structural(const ChainView& view, TxIndex t,
                                             TxIndex from,
                                             std::vector<TxIndex>* touched) {
  const TxView& tx = view.tx(t);
  h1_process_tx(tx, h1_uf_, &h1_stats_);
  h1_process_tx(tx, final_uf_, nullptr);

  // A receipt is a dice rebound when every resolved sender is a dice
  // address — same definition as the batch Receipts::build.
  bool all_dice = !tx.inputs.empty();
  for (const InputView& in : tx.inputs) {
    if (in.addr == kNoAddr || !dice_ids_.contains(in.addr)) {
      all_dice = false;
      break;
    }
  }
  for (const OutputView& out : tx.outputs) {
    if (out.addr == kNoAddr) continue;
    if (touched != nullptr) {
      // A new receipt for an address first seen before this delta can
      // retroactively flip exactly the decision of that first
      // transaction (see file comment in incremental.hpp).
      TxIndex first = view.first_seen(out.addr);
      if (first < from) touched->push_back(first);
    }
    receipt_at_[out.addr].push_back(t);
    receipt_dice_[out.addr].push_back(all_dice ? std::uint8_t{1}
                                               : std::uint8_t{0});
  }
  h2_mark_self_change(tx, options_, [&](AddrId a) {
    if (self_change_first_[a] == kNoTx) self_change_first_[a] = t;
  });
}

H2Decision IncrementalClusterer::decide(const ChainView& view,
                                        TxIndex t) const {
  return h2_decide(view, t, options_, TxCtx{this, t});
}

void IncrementalClusterer::unite_label(const ChainView& view, TxIndex t,
                                       AddrId change, UnionFind& uf) {
  for (const InputView& in : view.tx(t).inputs) {
    if (in.addr == kNoAddr) continue;
    uf.unite(in.addr, change);
  }
}

IncrementalClusterer::DeltaStats IncrementalClusterer::apply(
    const ChainView& view) {
  DeltaStats stats;
  if (view.tx_count() < next_tx_)
    throw UsageError("incremental: view shrank below the processed prefix");
  const TxIndex from = next_tx_;
  const TxIndex end = static_cast<TxIndex>(view.tx_count());
  grow_to(view);
  resolve_pending_dice(view);
  if (end == from) return stats;
  stats.txs = end - from;

  // Phase 1 — structural append: H1 links, receipt indices,
  // self-change marks, and the touched-transaction set. All delta
  // receipts must land before any decision so next_real_receipt sees
  // the full extended chain, exactly like a batch scan over it.
  std::vector<TxIndex> touched;
  for (TxIndex t = from; t < end; ++t)
    ingest_structural(view, t, from, &touched);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  // Phase 2 — decide the new transactions in chain order.
  for (TxIndex t = from; t < end; ++t) {
    H2Decision d = decide(view, t);
    outcome_[t] = d.outcome;
    change_of_tx_[t] = d.change;
    if (std::uint64_t* slot = h2_skip_slot(skipped_, d.outcome)) {
      ++*slot;
    } else {
      ++label_count_;
      unite_label(view, t, d.change, final_uf_);
    }
  }

  // Phase 3 — re-decide the touched old transactions. A retracted or
  // changed label cannot be undone in a union-find, so it forces a
  // final-forest rebuild below; purely additive changes merge in
  // place.
  bool needs_rebuild = false;
  std::vector<TxIndex> newly_labeled;
  for (TxIndex t : touched) {
    ++stats.reevaluated;
    H2Decision d = decide(view, t);
    if (d.outcome == outcome_[t] && d.change == change_of_tx_[t]) continue;
    ++stats.label_flips;
    if (std::uint64_t* slot = h2_skip_slot(skipped_, outcome_[t])) {
      --*slot;
    } else {
      --label_count_;
      needs_rebuild = true;  // a standing label was retracted/changed
    }
    if (std::uint64_t* slot = h2_skip_slot(skipped_, d.outcome)) {
      ++*slot;
    } else {
      ++label_count_;
      newly_labeled.push_back(t);
    }
    outcome_[t] = d.outcome;
    change_of_tx_[t] = d.change;
  }

  if (needs_rebuild) {
    // Rebuild = H1 forest + replay of every standing label. The merge
    // callback's deterministic ordering is what makes the rebuild's
    // union sequence reproducible across runs.
    UnionFind rebuilt(view.address_count());
    std::uint64_t merges = 0;
    rebuilt.absorb(h1_uf_,
                   [&](const UnionFind::MergeEvent&) { ++merges; });
    for (TxIndex t = 0; t < end; ++t)
      if (outcome_[t] == H2Outcome::kLabeled)
        unite_label(view, t, change_of_tx_[t], rebuilt);
    final_uf_ = std::move(rebuilt);
    stats.rebuild_merges = merges;
    stats.final_rebuilds = 1;
  } else {
    for (TxIndex t : newly_labeled)
      unite_label(view, t, change_of_tx_[t], final_uf_);
  }

  next_tx_ = end;
  const DeltaMetrics& m = DeltaMetrics::get();
  m.reevaluated.add(stats.reevaluated);
  m.label_flips.add(stats.label_flips);
  m.final_rebuilds.add(stats.final_rebuilds);
  return stats;
}

Clustering IncrementalClusterer::h1_clustering() const {
  UnionFind copy = h1_uf_;
  return Clustering::from_union_find(copy);
}

Clustering IncrementalClusterer::clustering() const {
  UnionFind copy = final_uf_;
  return Clustering::from_union_find(copy);
}

H2Result IncrementalClusterer::h2_result() const {
  H2Result r;
  r.change_of_tx.assign(change_of_tx_.begin(),
                        change_of_tx_.begin() + next_tx_);
  r.skipped = skipped_;
  for (TxIndex t = 0; t < next_tx_; ++t)
    if (outcome_[t] == H2Outcome::kLabeled)
      r.labels.push_back(H2Label{t, change_of_tx_[t]});
  return r;
}

Bytes IncrementalClusterer::serialize() const {
  Writer w;
  w.u32le(kSnapshotVersion);
  w.u32le(next_tx_);
  w.var_bytes(ByteView(reinterpret_cast<const std::uint8_t*>(outcome_.data()),
                       next_tx_));
  for (TxIndex t = 0; t < next_tx_; ++t) w.u32le(change_of_tx_[t]);
  return w.take();
}

IncrementalClusterer IncrementalClusterer::deserialize(
    ByteView raw, const ChainView& view, H2Options options,
    std::vector<Address> dice_addresses) {
  Reader r(raw);
  if (r.u32le() != kSnapshotVersion)
    throw ParseError("clusterer snapshot: unsupported version");
  TxIndex next = r.u32le();
  if (next != view.tx_count())
    throw ParseError("clusterer snapshot: tx count disagrees with the view");
  Bytes outcomes = r.var_bytes();
  if (outcomes.size() != next)
    throw ParseError("clusterer snapshot: truncated outcome table");

  IncrementalClusterer c(options, std::move(dice_addresses));
  c.grow_to(view);
  c.resolve_pending_dice(view);
  for (TxIndex t = 0; t < next; ++t) {
    std::uint8_t o = outcomes[t];
    if (o > static_cast<std::uint8_t>(H2Outcome::kWindowVeto))
      throw ParseError("clusterer snapshot: bad outcome byte");
    c.outcome_[t] = static_cast<H2Outcome>(o);
    AddrId change = r.u32le();
    if (c.outcome_[t] == H2Outcome::kLabeled) {
      if (change >= view.address_count())
        throw ParseError("clusterer snapshot: label address out of range");
    } else if (change != kNoAddr) {
      throw ParseError("clusterer snapshot: change address on unlabeled tx");
    }
    c.change_of_tx_[t] = change;
  }
  r.expect_eof();

  // Rebuild everything derived from the view: H1 forest + stats,
  // receipt/self-change indices, then the final forest from the
  // decision table.
  for (TxIndex t = 0; t < next; ++t)
    c.ingest_structural(view, t, /*from=*/0, /*touched=*/nullptr);
  for (TxIndex t = 0; t < next; ++t) {
    if (std::uint64_t* slot = h2_skip_slot(c.skipped_, c.outcome_[t])) {
      ++*slot;
    } else {
      ++c.label_count_;
      c.unite_label(view, t, c.change_of_tx_[t], c.final_uf_);
    }
  }
  c.next_tx_ = next;
  return c;
}

}  // namespace fist
