#include "cluster/metrics.hpp"

#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace fist {

namespace {

constexpr std::uint64_t choose2(std::uint64_t n) noexcept {
  return n * (n - 1) / 2;
}

/// The contingency counts the closed-form scores are computed from.
struct Contingency {
  std::unordered_map<std::uint32_t, std::uint64_t> pred_sizes;
  std::unordered_map<std::uint32_t, std::uint64_t> true_sizes;
  // (cluster, owner) -> count, keyed by a 64-bit pack.
  std::unordered_map<std::uint64_t, std::uint64_t> joint;

  void count(std::span<const std::uint32_t> predicted,
             std::span<const std::uint32_t> truth, std::size_t lo,
             std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (truth[i] == kUnknownOwner) continue;
      ++pred_sizes[predicted[i]];
      ++true_sizes[truth[i]];
      ++joint[(static_cast<std::uint64_t>(predicted[i]) << 32) | truth[i]];
    }
  }

  // fistlint:allow-file(unordered-iter) commutative keyed integer
  // sums: table cells merge and fold order-independently
  void add(const Contingency& other) {
    for (const auto& [k, n] : other.pred_sizes) pred_sizes[k] += n;
    for (const auto& [k, n] : other.true_sizes) true_sizes[k] += n;
    for (const auto& [k, n] : other.joint) joint[k] += n;
  }
};

PairwiseScores scores_from(const Contingency& c) {
  PairwiseScores s;
  for (const auto& [k, n] : c.pred_sizes) s.predicted_pairs += choose2(n);
  for (const auto& [k, n] : c.true_sizes) s.true_pairs += choose2(n);
  for (const auto& [k, n] : c.joint) s.agreeing_pairs += choose2(n);

  s.precision = s.predicted_pairs == 0
                    ? 1.0
                    : static_cast<double>(s.agreeing_pairs) /
                          static_cast<double>(s.predicted_pairs);
  s.recall = s.true_pairs == 0 ? 1.0
                               : static_cast<double>(s.agreeing_pairs) /
                                     static_cast<double>(s.true_pairs);
  return s;
}

}  // namespace

PairwiseScores pairwise_scores(std::span<const std::uint32_t> predicted,
                               std::span<const std::uint32_t> truth) {
  if (predicted.size() != truth.size())
    throw UsageError("pairwise_scores: span size mismatch");
  Contingency c;
  c.count(predicted, truth, 0, predicted.size());
  return scores_from(c);
}

PairwiseScores pairwise_scores(std::span<const std::uint32_t> predicted,
                               std::span<const std::uint32_t> truth,
                               Executor& exec) {
  if (predicted.size() != truth.size())
    throw UsageError("pairwise_scores: span size mismatch");
  if (exec.inline_mode()) return pairwise_scores(predicted, truth);

  std::size_t n = predicted.size();
  std::size_t shard_count = exec.worker_count();
  if (shard_count > n) shard_count = n == 0 ? 1 : n;
  std::vector<Contingency> local(shard_count);
  exec.parallel_for_each(0, shard_count, [&](std::size_t s) {
    local[s].count(predicted, truth, n * s / shard_count,
                   n * (s + 1) / shard_count);
  });
  // Sum-merge: cell counts are integers, so the merged table (and every
  // score derived from it) is independent of sharding.
  Contingency total;
  for (const Contingency& c : local) total.add(c);
  return scores_from(total);
}

}  // namespace fist
