#include "cluster/metrics.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace fist {

namespace {

constexpr std::uint64_t choose2(std::uint64_t n) noexcept {
  return n * (n - 1) / 2;
}

}  // namespace

PairwiseScores pairwise_scores(std::span<const std::uint32_t> predicted,
                               std::span<const std::uint32_t> truth) {
  if (predicted.size() != truth.size())
    throw UsageError("pairwise_scores: span size mismatch");

  std::unordered_map<std::uint32_t, std::uint64_t> pred_sizes;
  std::unordered_map<std::uint32_t, std::uint64_t> true_sizes;
  // Contingency: (cluster, owner) -> count, keyed by a 64-bit pack.
  std::unordered_map<std::uint64_t, std::uint64_t> joint;

  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (truth[i] == kUnknownOwner) continue;
    ++pred_sizes[predicted[i]];
    ++true_sizes[truth[i]];
    ++joint[(static_cast<std::uint64_t>(predicted[i]) << 32) | truth[i]];
  }

  PairwiseScores s;
  for (const auto& [c, n] : pred_sizes) s.predicted_pairs += choose2(n);
  for (const auto& [o, n] : true_sizes) s.true_pairs += choose2(n);
  for (const auto& [key, n] : joint) s.agreeing_pairs += choose2(n);

  s.precision = s.predicted_pairs == 0
                    ? 1.0
                    : static_cast<double>(s.agreeing_pairs) /
                          static_cast<double>(s.predicted_pairs);
  s.recall = s.true_pairs == 0 ? 1.0
                               : static_cast<double>(s.agreeing_pairs) /
                                     static_cast<double>(s.true_pairs);
  return s;
}

}  // namespace fist
