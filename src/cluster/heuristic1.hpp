// heuristic1.hpp — multi-input clustering (the paper's Heuristic 1).
//
// "If two (or more) addresses are used as inputs to the same
// transaction, then they are controlled by the same user." An inherent
// property of the protocol: every input must be signed, so one party
// holds all the keys.
#pragma once

#include "chain/view.hpp"
#include "cluster/unionfind.hpp"
#include "core/executor.hpp"

namespace fist {

/// Statistics from a Heuristic-1 pass.
struct H1Stats {
  std::uint64_t multi_input_txs = 0;  ///< txs that caused at least one merge
  std::uint64_t links = 0;            ///< successful union operations
};

/// Merges one transaction's input star into `uf`; updates `stats` (when
/// non-null) and returns true iff any union succeeded. The single
/// shared definition of "processing a transaction" keeps the
/// sequential pass, the shard passes, the replay, and the incremental
/// delta path in lockstep.
bool h1_process_tx(const TxView& tx, UnionFind& uf, H1Stats* stats);

/// Applies Heuristic 1 over the whole chain, merging input addresses of
/// each transaction in `uf` (which must cover view.address_count()).
H1Stats apply_heuristic1(const ChainView& view, UnionFind& uf);

/// Parallel Heuristic 1: workers run shard-local union-find passes
/// over disjoint transaction ranges, recording which transactions
/// added connectivity; those candidates are then replayed into `uf` in
/// chain order. A transaction that merged nothing within its shard
/// prefix cannot merge anything against the full prefix either, so the
/// replay reproduces the sequential pass exactly — partition AND stats
/// are bit-identical for every worker count.
H1Stats apply_heuristic1(const ChainView& view, UnionFind& uf,
                         Executor& exec);

/// Convenience: fresh union-find + full pass.
UnionFind heuristic1(const ChainView& view, H1Stats* stats = nullptr);

}  // namespace fist
