// incremental.hpp — block-delta clustering (H1 + refined H2).
//
// The batch pipeline recomputes everything from scratch on every new
// block. IncrementalClusterer instead *extends* its state when the
// ChainView grows: H1 processes only the appended transactions
// (union-find never needs to unmerge for H1 — links only accumulate),
// per-address receipt/self-change indices are appended in place, and
// H2 decisions are made for the new transactions plus re-evaluated for
// exactly the old transactions a new receipt can retroactively flip.
//
// Why re-evaluating only "touched" transactions is exact: a decision
// at transaction t (see cluster/h2_decide.hpp) depends on prefix state
// — receipt counts and self-change marks strictly before t, both
// stable under append — and on the *future* only through
// next_real_receipt() of t's fresh outputs, i.e. of addresses with
// first_seen == t. So appending a receipt for address A can only
// change the decision of transaction first_seen(A). Re-deciding those
// transactions against the extended indices reproduces the batch scan
// over prefix+delta bit-for-bit (differential-tested in
// tests/test_incremental.cpp at threads {1,2,8}).
//
// The final (H1+H2) forest cannot incrementally *unmerge* when a
// re-evaluation retracts a label, so it is kept as h1-forest + label
// replay and rebuilt from those parts whenever a previously-labeled
// transaction flips (counted in delta.final_rebuilds — rare, because
// flips require a fresh output of an old transaction to be paid
// again).
//
// Single-threaded by contract (like the checkpoint writer): one
// LiveIndex owns one clusterer; no internal locking.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "chain/view.hpp"
#include "cluster/clustering.hpp"
#include "cluster/h2_decide.hpp"
#include "cluster/heuristic1.hpp"
#include "cluster/heuristic2.hpp"
#include "cluster/unionfind.hpp"
#include "encoding/address.hpp"

namespace fist {

/// Incrementally maintained H1 + H2 clustering state.
class IncrementalClusterer {
 public:
  /// What one apply() did (all deterministic given the same view
  /// growth history).
  struct DeltaStats {
    std::uint64_t txs = 0;            ///< transactions consumed
    std::uint64_t reevaluated = 0;    ///< old transactions re-decided
    std::uint64_t label_flips = 0;    ///< decisions that changed
    std::uint64_t final_rebuilds = 0; ///< final-forest rebuilds (0/1)
    std::uint64_t rebuild_merges = 0; ///< unions replayed by a rebuild
  };

  /// `dice_addresses` are addresses (not yet interned ids) whose
  /// receipts count as dice rebounds; they resolve lazily against the
  /// view as it grows — exact, because an address can only appear as a
  /// transaction input after it was interned, so membership tests
  /// against the partially-resolved set agree with the fully-resolved
  /// one at every transaction. Only consulted when
  /// options.exempt_dice_rebounds is set.
  explicit IncrementalClusterer(H2Options options = {},
                                std::vector<Address> dice_addresses = {});

  /// Consumes every transaction of `view` beyond the ones already
  /// processed. `view` must be the same growing chain on every call
  /// (enforced only by tx_count monotonicity).
  DeltaStats apply(const ChainView& view);

  /// Transactions consumed so far.
  TxIndex tx_count() const noexcept { return next_tx_; }

  /// Exact H1 stats for the processed prefix (bit-identical to
  /// apply_heuristic1 over the same transactions).
  const H1Stats& h1_stats() const noexcept { return h1_stats_; }

  /// Materializes the H1-only partition.
  Clustering h1_clustering() const;

  /// Materializes the H2 result exactly as apply_heuristic2 would
  /// report it for the processed prefix (labels ascending by tx).
  H2Result h2_result() const;

  /// Materializes the final (H1 + H2 labels) partition.
  Clustering clustering() const;

  /// Compact snapshot image: the per-transaction decisions. The rest
  /// of the state (receipt indices, forests, stats) is rebuilt from
  /// the view by deserialize(), which costs one linear scan — the
  /// point of the snapshot is skipping the *delta-log replay*, not the
  /// index rebuild.
  Bytes serialize() const;

  /// Restores a clusterer whose processed prefix is exactly `view`
  /// (raw.next_tx must equal view.tx_count(); ParseError otherwise).
  /// `options` and `dice_addresses` must match the serializing run —
  /// they are inputs, not state, exactly like the batch pipeline's.
  static IncrementalClusterer deserialize(ByteView raw, const ChainView& view,
                                          H2Options options,
                                          std::vector<Address> dice_addresses);

 private:
  struct TxCtx;  // h2_decide context over the incremental indices

  void grow_to(const ChainView& view);
  void resolve_pending_dice(const ChainView& view);
  /// Appends tx `t`'s structural state (H1 links, receipts, marks);
  /// records old transactions needing re-evaluation into `touched`.
  void ingest_structural(const ChainView& view, TxIndex t, TxIndex from,
                         std::vector<TxIndex>* touched);
  H2Decision decide(const ChainView& view, TxIndex t) const;
  void unite_label(const ChainView& view, TxIndex t, AddrId change,
                   UnionFind& uf);

  H2Options options_;
  std::vector<Address> dice_pending_;
  // Membership set only — queried by key, never iterated.
  std::unordered_set<AddrId> dice_ids_;

  TxIndex next_tx_ = 0;
  UnionFind h1_uf_;
  H1Stats h1_stats_;
  UnionFind final_uf_;  ///< h1 links + current labels (see file comment)

  // Per-address receipt history (parallel vectors, ascending tx) and
  // first self-change appearance (kNoTx if never).
  std::vector<std::vector<TxIndex>> receipt_at_;
  std::vector<std::vector<std::uint8_t>> receipt_dice_;
  std::vector<TxIndex> self_change_first_;

  // Per-transaction decisions.
  std::vector<H2Outcome> outcome_;
  std::vector<AddrId> change_of_tx_;
  H2SkipStats skipped_;
  std::uint64_t label_count_ = 0;
};

}  // namespace fist
