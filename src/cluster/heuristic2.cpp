#include "cluster/heuristic2.hpp"

#include <algorithm>

#include "cluster/h2_decide.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"
#include "core/obs/span.hpp"

namespace fist {

namespace {

/// H2 label/merge/refinement-rejection counters — all deterministic
/// (the pass is a sequential chronological scan on every path).
struct H2Metrics {
  obs::Counter labels;
  obs::Counter merges;
  obs::Counter skip_coinbase;
  obs::Counter skip_self_change;
  obs::Counter skip_no_candidate;
  obs::Counter skip_ambiguous;
  obs::Counter skip_reused_guard;
  obs::Counter skip_self_change_history;
  obs::Counter skip_window_veto;
  obs::Counter skip_too_few_outputs;

  static const H2Metrics& get() {
    static const H2Metrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      H2Metrics m;
      m.labels = r.counter("h2.labels");
      m.merges = r.counter("h2.merges");
      m.skip_coinbase = r.counter("h2.skip.coinbase");
      m.skip_self_change = r.counter("h2.skip.self_change");
      m.skip_no_candidate = r.counter("h2.skip.no_candidate");
      m.skip_ambiguous = r.counter("h2.skip.ambiguous");
      m.skip_reused_guard = r.counter("h2.skip.reused_guard");
      m.skip_self_change_history = r.counter("h2.skip.self_change_history");
      m.skip_window_veto = r.counter("h2.skip.window_veto");
      m.skip_too_few_outputs = r.counter("h2.skip.too_few_outputs");
      return m;
    }();
    return metrics;
  }
};

void record_h2_result(const H2Result& result) {
  const H2Metrics& m = H2Metrics::get();
  m.labels.add(result.labels.size());
  m.skip_coinbase.add(result.skipped.coinbase);
  m.skip_self_change.add(result.skipped.self_change);
  m.skip_no_candidate.add(result.skipped.no_candidate);
  m.skip_ambiguous.add(result.skipped.ambiguous);
  m.skip_reused_guard.add(result.skipped.reused_guard);
  m.skip_self_change_history.add(result.skipped.self_change_history_guard);
  m.skip_window_veto.add(result.skipped.window_veto);
  m.skip_too_few_outputs.add(result.skipped.too_few_outputs);
}

/// Receipt histories: for every address, the transactions in which it
/// received an output, and whether all of that transaction's resolved
/// senders were dice addresses (a "rebound" receipt).
struct Receipts {
  std::vector<std::vector<TxIndex>> at;       // per addr, ascending
  std::vector<std::vector<std::uint8_t>> dice;  // parallel flags

  static Receipts build(const ChainView& view,
                        const std::unordered_set<AddrId>& dice_addrs) {
    Receipts r;
    r.at.resize(view.address_count());
    r.dice.resize(view.address_count());
    for (TxIndex t = 0; t < view.tx_count(); ++t) {
      const TxView& tx = view.tx(t);
      bool all_dice = !tx.inputs.empty();
      for (const InputView& in : tx.inputs) {
        if (in.addr == kNoAddr || !dice_addrs.contains(in.addr)) {
          all_dice = false;
          break;
        }
      }
      for (const OutputView& out : tx.outputs) {
        if (out.addr == kNoAddr) continue;
        // An address paid twice by one tx gets two receipt entries.
        r.at[out.addr].push_back(t);
        r.dice[out.addr].push_back(all_dice ? 1 : 0);
      }
    }
    return r;
  }

  /// First receipt strictly after `t` that is not dice-exempt.
  /// Returns kNoTx if none.
  TxIndex next_real_receipt(AddrId addr, TxIndex t, bool exempt_dice) const {
    const std::vector<TxIndex>& list = at[addr];
    auto it = std::upper_bound(list.begin(), list.end(), t);
    for (; it != list.end(); ++it) {
      std::size_t idx = static_cast<std::size_t>(it - list.begin());
      if (exempt_dice && dice[addr][idx]) continue;
      return *it;
    }
    return kNoTx;
  }
};

}  // namespace

H2Result apply_heuristic2(const ChainView& view, const H2Options& options,
                          const std::unordered_set<AddrId>& dice_addrs) {
  H2Result result;
  result.change_of_tx.assign(view.tx_count(), kNoAddr);

  const Receipts receipts = [&] {
    obs::Span span("h2.receipts");
    return Receipts::build(view, dice_addrs);
  }();
  obs::Span scan_span("h2.scan");
  obs::ProgressStage progress =
      obs::ProgressBoard::global().begin_stage("h2.scan", view.tx_count());
  constexpr TxIndex kProgressChunk = 65536;

  // Running per-address state, updated chronologically. The decision
  // logic itself lives in h2_decide(); this loop only maintains the
  // prefix state and files each verdict.
  std::vector<std::uint32_t> receipts_so_far(view.address_count(), 0);
  std::vector<std::uint8_t> was_self_change(view.address_count(), 0);

  struct BatchCtx {
    const std::vector<std::uint32_t>& so_far;
    const std::vector<std::uint8_t>& self_change;
    const Receipts& receipts;
    bool exempt_dice;

    std::uint32_t receipts_before(AddrId a) const { return so_far[a]; }
    bool was_self_change(AddrId a) const { return self_change[a] != 0; }
    TxIndex next_real_receipt(AddrId a, TxIndex t) const {
      return receipts.next_real_receipt(a, t, exempt_dice);
    }
  };
  const BatchCtx ctx{receipts_so_far, was_self_change, receipts,
                     options.exempt_dice_rebounds};

  for (TxIndex t = 0; t < view.tx_count(); ++t) {
    // Chunked at the loop top so it cannot be skipped by an exit path.
    if (t != 0 && t % kProgressChunk == 0) {
      progress.advance(kProgressChunk);
      obs::progress_console_tick();
    }
    const TxView& tx = view.tx(t);

    H2Decision decision = h2_decide(view, t, options, ctx);
    if (std::uint64_t* slot = h2_skip_slot(result.skipped, decision.outcome)) {
      ++*slot;
    } else {
      result.labels.push_back(H2Label{t, decision.change});
      result.change_of_tx[t] = decision.change;
    }

    // Per-address state updates happen once per transaction, after the
    // decision: self-change marks and receipt counts only ever affect
    // *later* transactions.
    h2_mark_self_change(tx, options,
                        [&](AddrId a) { was_self_change[a] = 1; });
    for (const OutputView& out : tx.outputs)
      if (out.addr != kNoAddr) ++receipts_so_far[out.addr];
  }
  progress.advance(view.tx_count() % kProgressChunk);
  progress.finish();
  scan_span.close();

  record_h2_result(result);
  return result;
}

std::uint64_t unite_h2_labels(const ChainView& view, const H2Result& result,
                              UnionFind& uf) {
  uf.grow(view.address_count());
  std::uint64_t merges = 0;
  for (const H2Label& label : result.labels) {
    const TxView& tx = view.tx(label.tx);
    // Join the change address with every input (the inputs themselves
    // are typically already joined by Heuristic 1, but uniting with all
    // keeps the result correct even on a fresh union-find).
    for (const InputView& in : tx.inputs) {
      if (in.addr == kNoAddr) continue;
      if (uf.unite(in.addr, label.change)) ++merges;
    }
  }
  H2Metrics::get().merges.add(merges);
  return merges;
}

H2FalsePositives estimate_h2_false_positives(
    const ChainView& view, const H2Result& result, const H2Options& options,
    const std::unordered_set<AddrId>& dice_addrs) {
  const Receipts receipts = Receipts::build(view, dice_addrs);
  H2FalsePositives fp;
  fp.labels = result.labels.size();
  for (const H2Label& label : result.labels) {
    TxIndex next = receipts.next_real_receipt(label.change, label.tx,
                                              options.exempt_dice_rebounds);
    if (next == kNoTx) continue;
    // Receipts inside the wait window were already vetoed at labeling
    // time; anything later voids the one-time property.
    if (view.tx(next).time > view.tx(label.tx).time + options.wait_window)
      ++fp.false_positives;
  }
  return fp;
}

}  // namespace fist
