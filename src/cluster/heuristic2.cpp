#include "cluster/heuristic2.hpp"

#include <algorithm>

#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"
#include "core/obs/span.hpp"

namespace fist {

namespace {

/// H2 label/merge/refinement-rejection counters — all deterministic
/// (the pass is a sequential chronological scan on every path).
struct H2Metrics {
  obs::Counter labels;
  obs::Counter merges;
  obs::Counter skip_coinbase;
  obs::Counter skip_self_change;
  obs::Counter skip_no_candidate;
  obs::Counter skip_ambiguous;
  obs::Counter skip_reused_guard;
  obs::Counter skip_self_change_history;
  obs::Counter skip_window_veto;
  obs::Counter skip_too_few_outputs;

  static const H2Metrics& get() {
    static const H2Metrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      H2Metrics m;
      m.labels = r.counter("h2.labels");
      m.merges = r.counter("h2.merges");
      m.skip_coinbase = r.counter("h2.skip.coinbase");
      m.skip_self_change = r.counter("h2.skip.self_change");
      m.skip_no_candidate = r.counter("h2.skip.no_candidate");
      m.skip_ambiguous = r.counter("h2.skip.ambiguous");
      m.skip_reused_guard = r.counter("h2.skip.reused_guard");
      m.skip_self_change_history = r.counter("h2.skip.self_change_history");
      m.skip_window_veto = r.counter("h2.skip.window_veto");
      m.skip_too_few_outputs = r.counter("h2.skip.too_few_outputs");
      return m;
    }();
    return metrics;
  }
};

void record_h2_result(const H2Result& result) {
  const H2Metrics& m = H2Metrics::get();
  m.labels.add(result.labels.size());
  m.skip_coinbase.add(result.skipped.coinbase);
  m.skip_self_change.add(result.skipped.self_change);
  m.skip_no_candidate.add(result.skipped.no_candidate);
  m.skip_ambiguous.add(result.skipped.ambiguous);
  m.skip_reused_guard.add(result.skipped.reused_guard);
  m.skip_self_change_history.add(result.skipped.self_change_history_guard);
  m.skip_window_veto.add(result.skipped.window_veto);
  m.skip_too_few_outputs.add(result.skipped.too_few_outputs);
}

/// Receipt histories: for every address, the transactions in which it
/// received an output, and whether all of that transaction's resolved
/// senders were dice addresses (a "rebound" receipt).
struct Receipts {
  std::vector<std::vector<TxIndex>> at;       // per addr, ascending
  std::vector<std::vector<std::uint8_t>> dice;  // parallel flags

  static Receipts build(const ChainView& view,
                        const std::unordered_set<AddrId>& dice_addrs) {
    Receipts r;
    r.at.resize(view.address_count());
    r.dice.resize(view.address_count());
    for (TxIndex t = 0; t < view.tx_count(); ++t) {
      const TxView& tx = view.tx(t);
      bool all_dice = !tx.inputs.empty();
      for (const InputView& in : tx.inputs) {
        if (in.addr == kNoAddr || !dice_addrs.contains(in.addr)) {
          all_dice = false;
          break;
        }
      }
      for (const OutputView& out : tx.outputs) {
        if (out.addr == kNoAddr) continue;
        // An address paid twice by one tx gets two receipt entries.
        r.at[out.addr].push_back(t);
        r.dice[out.addr].push_back(all_dice ? 1 : 0);
      }
    }
    return r;
  }

  /// First receipt strictly after `t` that is not dice-exempt.
  /// Returns kNoTx if none.
  TxIndex next_real_receipt(AddrId addr, TxIndex t, bool exempt_dice) const {
    const std::vector<TxIndex>& list = at[addr];
    auto it = std::upper_bound(list.begin(), list.end(), t);
    for (; it != list.end(); ++it) {
      std::size_t idx = static_cast<std::size_t>(it - list.begin());
      if (exempt_dice && dice[addr][idx]) continue;
      return *it;
    }
    return kNoTx;
  }
};

}  // namespace

H2Result apply_heuristic2(const ChainView& view, const H2Options& options,
                          const std::unordered_set<AddrId>& dice_addrs) {
  H2Result result;
  result.change_of_tx.assign(view.tx_count(), kNoAddr);

  const Receipts receipts = [&] {
    obs::Span span("h2.receipts");
    return Receipts::build(view, dice_addrs);
  }();
  obs::Span scan_span("h2.scan");
  obs::ProgressStage progress =
      obs::ProgressBoard::global().begin_stage("h2.scan", view.tx_count());
  constexpr TxIndex kProgressChunk = 65536;

  // Running per-address state, updated chronologically.
  std::vector<std::uint32_t> receipts_so_far(view.address_count(), 0);
  std::vector<std::uint8_t> was_self_change(view.address_count(), 0);

  std::vector<AddrId> tx_output_addrs;  // scratch

  for (TxIndex t = 0; t < view.tx_count(); ++t) {
    // Chunked at the loop top so the many `continue` exits below
    // cannot skip a tick.
    if (t != 0 && t % kProgressChunk == 0) {
      progress.advance(kProgressChunk);
      obs::progress_console_tick();
    }
    const TxView& tx = view.tx(t);

    // Helper to apply the per-address updates exactly once per tx exit.
    auto commit = [&] {
      for (const OutputView& out : tx.outputs)
        if (out.addr != kNoAddr) ++receipts_so_far[out.addr];
    };

    if (tx.coinbase) {  // condition (2)
      ++result.skipped.coinbase;
      commit();
      continue;
    }
    if (tx.outputs.size() < options.min_outputs) {
      ++result.skipped.too_few_outputs;
      commit();
      continue;
    }

    // Condition (3): self-change — any output address also an input
    // address. Such transactions are skipped, and the address is
    // remembered for the self-change-history guard.
    bool self_change = false;
    for (const OutputView& out : tx.outputs) {
      if (out.addr == kNoAddr) continue;
      for (const InputView& in : tx.inputs) {
        if (in.addr == out.addr) {
          self_change = true;
          was_self_change[out.addr] = 1;
        }
      }
    }
    if (self_change) {
      ++result.skipped.self_change;
      commit();
      continue;
    }

    // Conditions (1) and (4): exactly one output is making its first
    // chain appearance.
    AddrId candidate = kNoAddr;
    std::size_t fresh = 0;
    bool candidate_dupe = false;
    for (const OutputView& out : tx.outputs) {
      if (out.addr == kNoAddr) continue;
      if (view.first_seen(out.addr) == t && receipts_so_far[out.addr] == 0) {
        if (out.addr == candidate) {
          candidate_dupe = true;  // same new addr in two output slots
          continue;
        }
        ++fresh;
        candidate = out.addr;
      }
    }
    if (fresh == 0) {
      ++result.skipped.no_candidate;
      commit();
      continue;
    }
    if (fresh > 1 && options.resolve_ambiguous_via_future) {
      // Disambiguate by future reuse: fresh outputs that receive again
      // later were payment addresses, not one-time change. To avoid
      // being fooled when the *true* change is reused later (which
      // would leave the payment output as the lone never-reused
      // candidate), only resolve peel-shaped transactions — the
      // surviving candidate must also carry the dominant remainder.
      AddrId survivor = kNoAddr;
      Amount survivor_value = 0;
      std::size_t never_reused = 0;
      Amount largest_other = 0;
      for (const OutputView& out : tx.outputs) {
        if (out.addr == kNoAddr || view.first_seen(out.addr) != t ||
            receipts_so_far[out.addr] != 0) {
          largest_other = std::max(largest_other, out.value);
          continue;
        }
        if (receipts.next_real_receipt(out.addr, t,
                                       options.exempt_dice_rebounds) ==
            kNoTx) {
          if (out.addr != survivor) ++never_reused;
          survivor = out.addr;
          survivor_value = out.value;
        } else {
          largest_other = std::max(largest_other, out.value);
        }
      }
      if (never_reused == 1 && survivor_value >= 2 * largest_other) {
        fresh = 1;
        candidate = survivor;
        candidate_dupe = false;
      }
    }
    if (fresh > 1 || candidate_dupe) {
      ++result.skipped.ambiguous;
      commit();
      continue;
    }

    // §4.2 guard: any output address that already received exactly one
    // input may itself be a change address being reused — do not link
    // through this transaction.
    if (options.guard_reused_change) {
      bool veto = false;
      for (const OutputView& out : tx.outputs) {
        if (out.addr != kNoAddr && out.addr != candidate &&
            receipts_so_far[out.addr] == 1) {
          veto = true;
          break;
        }
      }
      if (veto) {
        ++result.skipped.reused_guard;
        commit();
        continue;
      }
    }

    // §4.2 guard: outputs previously used in a self-change position.
    // Heavily reused addresses (many prior receipts) are plainly not
    // change addresses, so the guard only fires for outputs that could
    // still plausibly be one — without this scoping, popular service
    // addresses with a self-change history would veto nearly every
    // transaction that pays them.
    if (options.guard_self_change_history) {
      bool veto = false;
      for (const OutputView& out : tx.outputs) {
        if (out.addr != kNoAddr && was_self_change[out.addr] &&
            receipts_so_far[out.addr] < 3) {
          veto = true;
          break;
        }
      }
      if (veto) {
        ++result.skipped.self_change_history_guard;
        commit();
        continue;
      }
    }

    // §4.2 wait window: peek ahead — if the candidate receives again
    // within the window (dice rebounds exempt), it was not one-time.
    if (options.wait_window > 0) {
      TxIndex next = receipts.next_real_receipt(
          candidate, t, options.exempt_dice_rebounds);
      if (next != kNoTx &&
          view.tx(next).time <= tx.time + options.wait_window) {
        ++result.skipped.window_veto;
        commit();
        continue;
      }
    }

    result.labels.push_back(H2Label{t, candidate});
    result.change_of_tx[t] = candidate;
    commit();
  }
  progress.advance(view.tx_count() % kProgressChunk);
  progress.finish();
  scan_span.close();

  record_h2_result(result);
  return result;
}

std::uint64_t unite_h2_labels(const ChainView& view, const H2Result& result,
                              UnionFind& uf) {
  uf.grow(view.address_count());
  std::uint64_t merges = 0;
  for (const H2Label& label : result.labels) {
    const TxView& tx = view.tx(label.tx);
    // Join the change address with every input (the inputs themselves
    // are typically already joined by Heuristic 1, but uniting with all
    // keeps the result correct even on a fresh union-find).
    for (const InputView& in : tx.inputs) {
      if (in.addr == kNoAddr) continue;
      if (uf.unite(in.addr, label.change)) ++merges;
    }
  }
  H2Metrics::get().merges.add(merges);
  return merges;
}

H2FalsePositives estimate_h2_false_positives(
    const ChainView& view, const H2Result& result, const H2Options& options,
    const std::unordered_set<AddrId>& dice_addrs) {
  const Receipts receipts = Receipts::build(view, dice_addrs);
  H2FalsePositives fp;
  fp.labels = result.labels.size();
  for (const H2Label& label : result.labels) {
    TxIndex next = receipts.next_real_receipt(label.change, label.tx,
                                              options.exempt_dice_rebounds);
    if (next == kNoTx) continue;
    // Receipts inside the wait window were already vetoed at labeling
    // time; anything later voids the one-time property.
    if (view.tx(next).time > view.tx(label.tx).time + options.wait_window)
      ++fp.false_positives;
  }
  return fp;
}

}  // namespace fist
