// unionfind.hpp — disjoint-set forest sized for millions of addresses.
//
// Both clustering heuristics reduce to union operations over AddrIds;
// this structure (union by size, path halving) gives effectively
// constant-time merges at block-chain scale.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fist {

/// Disjoint-set forest over dense 32-bit ids.
class UnionFind {
 public:
  /// Creates `n` singleton sets.
  explicit UnionFind(std::size_t n = 0);

  /// Grows to at least `n` elements (new elements are singletons).
  void grow(std::size_t n);

  /// Representative of `x`'s set (with path halving).
  std::uint32_t find(std::uint32_t x) noexcept;

  /// Const find: no path compression (usable on shared instances).
  std::uint32_t find_const(std::uint32_t x) const noexcept;

  /// Merges the sets of `a` and `b`; returns false if already joined.
  bool unite(std::uint32_t a, std::uint32_t b) noexcept;

  /// Merges every set of `other` into this forest (growing it if
  /// `other` is larger) and returns the number of successful unions.
  /// Absorb is the associative/commutative merge the sharded passes
  /// rely on: absorbing any family of forests, in any order, yields
  /// the partition of the union of their link sets. Absorbing the same
  /// forest twice is a no-op (returns 0).
  std::uint64_t absorb(const UnionFind& other);

  /// Invoked for every union absorb() actually performs: the element
  /// being replayed, the root it joined through, and the surviving
  /// root afterwards. The event sequence is a pure function of the
  /// absorbed forest's layout and this forest's prior state, so two
  /// absorbs of the same forests in the same order report identical
  /// sequences at any thread count — the delta path keys its merge
  /// journal off exactly this ordering.
  struct MergeEvent {
    std::uint32_t element = 0;   ///< replayed element (ascending order)
    std::uint32_t joined = 0;    ///< other forest's parent of `element`
    std::uint32_t root = 0;      ///< surviving root after the union
  };

  /// As absorb(), reporting each successful union through `on_merge`
  /// in deterministic (ascending-element) order.
  std::uint64_t absorb(const UnionFind& other,
                       const std::function<void(const MergeEvent&)>& on_merge);

  /// True iff `a` and `b` share a set.
  bool same(std::uint32_t a, std::uint32_t b) noexcept {
    return find(a) == find(b);
  }

  /// Size of `x`'s set.
  std::uint32_t size_of(std::uint32_t x) noexcept {
    return size_[find(x)];
  }

  /// Number of elements.
  std::size_t size() const noexcept { return parent_.size(); }

  /// Number of disjoint sets.
  std::size_t set_count() const noexcept { return sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t sets_ = 0;
};

}  // namespace fist
