#include "cluster/unionfind.hpp"

namespace fist {

UnionFind::UnionFind(std::size_t n) { grow(n); }

void UnionFind::grow(std::size_t n) {
  std::size_t old = parent_.size();
  if (n <= old) return;
  parent_.resize(n);
  size_.resize(n, 1);
  for (std::size_t i = old; i < n; ++i)
    parent_[i] = static_cast<std::uint32_t>(i);
  sets_ += n - old;
}

std::uint32_t UnionFind::find(std::uint32_t x) noexcept {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

std::uint32_t UnionFind::find_const(std::uint32_t x) const noexcept {
  while (parent_[x] != x) x = parent_[x];
  return x;
}

std::uint64_t UnionFind::absorb(const UnionFind& other) {
  grow(other.size());
  std::uint64_t merges = 0;
  // Uniting each element with its parent replays the other forest's
  // entire connectivity: every root path collapses into one set here.
  for (std::uint32_t x = 0; x < other.parent_.size(); ++x)
    if (other.parent_[x] != x && unite(x, other.parent_[x])) ++merges;
  return merges;
}

std::uint64_t UnionFind::absorb(
    const UnionFind& other,
    const std::function<void(const MergeEvent&)>& on_merge) {
  grow(other.size());
  std::uint64_t merges = 0;
  for (std::uint32_t x = 0; x < other.parent_.size(); ++x) {
    if (other.parent_[x] == x) continue;
    std::uint32_t joined = other.parent_[x];
    if (!unite(x, joined)) continue;
    ++merges;
    if (on_merge) on_merge(MergeEvent{x, joined, find(x)});
  }
  return merges;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) noexcept {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) {
    std::uint32_t t = a;
    a = b;
    b = t;
  }
  parent_[b] = a;
  size_[a] += size_[b];
  --sets_;
  return true;
}

}  // namespace fist
