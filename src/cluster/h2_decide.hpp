// h2_decide.hpp — the Heuristic-2 per-transaction decision, factored
// out of the chronological scan.
//
// apply_heuristic2 (the batch pass) and IncrementalClusterer (the
// delta path) must agree bit-for-bit on every transaction's verdict.
// Rather than maintaining two copies of the §4.1 conditions and §4.2
// refinement ladder, both call h2_decide() with a context describing
// the *prefix state* at transaction t:
//
//   receipts_before(a)   — receipts of address a strictly before t
//   was_self_change(a)   — a appeared in a self-change position in
//                          some transaction strictly before t
//   next_real_receipt(a, t) — first receipt of a strictly after t that
//                          is not a dice rebound (kNoTx if none)
//
// The batch pass answers these from its running arrays; the
// incremental path answers them by binary search over its per-address
// receipt indices. Because the decision is a pure function of
// (view, t, options, prefix state, future receipts of t's fresh
// outputs), any context that answers the three queries the way the
// batch scan would yields the identical decision — this is the whole
// correctness argument for delta re-evaluation.
#pragma once

#include <algorithm>
#include <cstdint>

#include "chain/view.hpp"
#include "cluster/heuristic2.hpp"

namespace fist {

/// Every way the H2 scan can dispose of a transaction. Ordered so the
/// incremental snapshot can store one byte per transaction.
enum class H2Outcome : std::uint8_t {
  kLabeled = 0,
  kCoinbase,
  kTooFewOutputs,
  kSelfChange,
  kNoCandidate,
  kAmbiguous,
  kReusedGuard,
  kSelfChangeHistoryGuard,
  kWindowVeto,
};

/// Verdict for one transaction: the outcome bucket, plus the change
/// address when labeled.
struct H2Decision {
  H2Outcome outcome = H2Outcome::kNoCandidate;
  AddrId change = kNoAddr;

  bool operator==(const H2Decision&) const = default;
};

/// The skip-stats bucket an outcome lands in (nullptr for kLabeled).
/// Shared by the batch pass (increments) and the delta path
/// (decrements the old bucket, increments the new one on a flip).
inline std::uint64_t* h2_skip_slot(H2SkipStats& s,
                                   H2Outcome outcome) noexcept {
  switch (outcome) {
    case H2Outcome::kLabeled: return nullptr;
    case H2Outcome::kCoinbase: return &s.coinbase;
    case H2Outcome::kTooFewOutputs: return &s.too_few_outputs;
    case H2Outcome::kSelfChange: return &s.self_change;
    case H2Outcome::kNoCandidate: return &s.no_candidate;
    case H2Outcome::kAmbiguous: return &s.ambiguous;
    case H2Outcome::kReusedGuard: return &s.reused_guard;
    case H2Outcome::kSelfChangeHistoryGuard:
      return &s.self_change_history_guard;
    case H2Outcome::kWindowVeto: return &s.window_veto;
  }
  return nullptr;
}

/// Decides transaction `t` exactly as the batch chronological scan
/// would, with prefix/future state answered by `ctx` (see file
/// comment for the required queries).
template <typename Ctx>
H2Decision h2_decide(const ChainView& view, TxIndex t,
                     const H2Options& options, const Ctx& ctx) {
  const TxView& tx = view.tx(t);

  if (tx.coinbase)  // condition (2)
    return {H2Outcome::kCoinbase, kNoAddr};
  if (tx.outputs.size() < options.min_outputs)
    return {H2Outcome::kTooFewOutputs, kNoAddr};

  // Condition (3): self-change — any output address also an input
  // address. Detection only; recording the mark for later transactions
  // is h2_mark_self_change's job.
  for (const OutputView& out : tx.outputs) {
    if (out.addr == kNoAddr) continue;
    for (const InputView& in : tx.inputs)
      if (in.addr == out.addr) return {H2Outcome::kSelfChange, kNoAddr};
  }

  // Conditions (1) and (4): exactly one output is making its first
  // chain appearance.
  AddrId candidate = kNoAddr;
  std::size_t fresh = 0;
  bool candidate_dupe = false;
  for (const OutputView& out : tx.outputs) {
    if (out.addr == kNoAddr) continue;
    if (view.first_seen(out.addr) == t && ctx.receipts_before(out.addr) == 0) {
      if (out.addr == candidate) {
        candidate_dupe = true;  // same new addr in two output slots
        continue;
      }
      ++fresh;
      candidate = out.addr;
    }
  }
  if (fresh == 0) return {H2Outcome::kNoCandidate, kNoAddr};

  if (fresh > 1 && options.resolve_ambiguous_via_future) {
    // Disambiguate by future reuse: fresh outputs that receive again
    // later were payment addresses, not one-time change. To avoid
    // being fooled when the *true* change is reused later (which
    // would leave the payment output as the lone never-reused
    // candidate), only resolve peel-shaped transactions — the
    // surviving candidate must also carry the dominant remainder.
    AddrId survivor = kNoAddr;
    Amount survivor_value = 0;
    std::size_t never_reused = 0;
    Amount largest_other = 0;
    for (const OutputView& out : tx.outputs) {
      if (out.addr == kNoAddr || view.first_seen(out.addr) != t ||
          ctx.receipts_before(out.addr) != 0) {
        largest_other = std::max(largest_other, out.value);
        continue;
      }
      if (ctx.next_real_receipt(out.addr, t) == kNoTx) {
        if (out.addr != survivor) ++never_reused;
        survivor = out.addr;
        survivor_value = out.value;
      } else {
        largest_other = std::max(largest_other, out.value);
      }
    }
    if (never_reused == 1 && survivor_value >= 2 * largest_other) {
      fresh = 1;
      candidate = survivor;
      candidate_dupe = false;
    }
  }
  if (fresh > 1 || candidate_dupe) return {H2Outcome::kAmbiguous, kNoAddr};

  // §4.2 guard: any output address that already received exactly one
  // input may itself be a change address being reused — do not link
  // through this transaction.
  if (options.guard_reused_change) {
    for (const OutputView& out : tx.outputs) {
      if (out.addr != kNoAddr && out.addr != candidate &&
          ctx.receipts_before(out.addr) == 1)
        return {H2Outcome::kReusedGuard, kNoAddr};
    }
  }

  // §4.2 guard: outputs previously used in a self-change position.
  // Heavily reused addresses (many prior receipts) are plainly not
  // change addresses, so the guard only fires for outputs that could
  // still plausibly be one — without this scoping, popular service
  // addresses with a self-change history would veto nearly every
  // transaction that pays them.
  if (options.guard_self_change_history) {
    for (const OutputView& out : tx.outputs) {
      if (out.addr != kNoAddr && ctx.was_self_change(out.addr) &&
          ctx.receipts_before(out.addr) < 3)
        return {H2Outcome::kSelfChangeHistoryGuard, kNoAddr};
    }
  }

  // §4.2 wait window: peek ahead — if the candidate receives again
  // within the window (dice rebounds exempt), it was not one-time.
  if (options.wait_window > 0) {
    TxIndex next = ctx.next_real_receipt(candidate, t);
    if (next != kNoTx && view.tx(next).time <= tx.time + options.wait_window)
      return {H2Outcome::kWindowVeto, kNoAddr};
  }

  return {H2Outcome::kLabeled, candidate};
}

/// Applies transaction `t`'s self-change marks through `mark(addr)`.
/// Mirrors the batch scan exactly: marks are only recorded by
/// transactions that reach the self-change check (non-coinbase, enough
/// outputs), and marking is idempotent.
template <typename MarkFn>
void h2_mark_self_change(const TxView& tx, const H2Options& options,
                         MarkFn&& mark) {
  if (tx.coinbase || tx.outputs.size() < options.min_outputs) return;
  for (const OutputView& out : tx.outputs) {
    if (out.addr == kNoAddr) continue;
    for (const InputView& in : tx.inputs) {
      if (in.addr == out.addr) {
        mark(out.addr);
        break;
      }
    }
  }
}

}  // namespace fist
