// heuristic2.hpp — one-time change-address clustering (Heuristic 2).
//
// The paper's new heuristic (§4.1–4.2): in the dominant client idiom, a
// spend sends excess value back to a freshly generated change address
// the user never reveals. An output is a *one-time change address* when
//   (1) it appears in no earlier transaction,
//   (2) the transaction is not a coin generation,
//   (3) the transaction has no self-change output, and
//   (4) every other output has appeared before.
// Heuristic 2 links that address with the transaction's inputs.
//
// Because the idiom — not the protocol — guarantees this, §4.2 adds
// refinements, all individually togglable here so the paper's
// false-positive ladder (13% → 1% → 0.28% → 0.17%) and super-cluster
// collapse can be reproduced and ablated:
//   * Satoshi-Dice exemption: payouts return to the sending address, so
//     later receipts purely from dice services don't void one-timeness;
//   * wait window: only label if no re-receipt within a day/week;
//   * reused-change guard: skip transactions touching an address that
//     already received exactly one input;
//   * self-change-history guard: skip transactions touching an address
//     previously seen in a self-change position.
#pragma once

#include <unordered_set>
#include <vector>

#include "chain/view.hpp"
#include "cluster/unionfind.hpp"
#include "util/timeutil.hpp"

namespace fist {

/// Refinement switches for Heuristic 2 (§4.2). All off = the naive
/// four-condition heuristic of §4.1.
struct H2Options {
  /// Ignore later receipts whose senders are all dice-game addresses.
  bool exempt_dice_rebounds = false;

  /// Require no re-receipt within this many seconds before labeling
  /// (0 = label immediately).
  Timestamp wait_window = 0;

  /// Skip transactions in which any output address has already
  /// received exactly one input.
  bool guard_reused_change = false;

  /// Skip transactions in which any output address previously appeared
  /// as a self-change address.
  bool guard_self_change_history = false;

  /// Minimum output count to consider (paper default: any; set 2 to
  /// restrict to classic peel-shaped transactions for ablation).
  std::size_t min_outputs = 1;

  /// When several outputs are first appearances (condition (4) fails),
  /// use future behavior to disambiguate: a true one-time change
  /// address never receives again, while a fresh *payment* address
  /// (e.g. a new exchange deposit address) typically does. If exactly
  /// one fresh output has no later (non-dice) receipt, label it. This
  /// is the time-stepping idea of §4.2 applied to disambiguation; it is
  /// what lets peeling chains be followed through first-time peels.
  bool resolve_ambiguous_via_future = false;
};

/// One identified change link.
struct H2Label {
  TxIndex tx = kNoTx;
  AddrId change = kNoAddr;
};

/// Why transactions were not labeled, for diagnostics and ablation.
struct H2SkipStats {
  std::uint64_t coinbase = 0;
  std::uint64_t self_change = 0;       ///< condition (3) violated
  std::uint64_t no_candidate = 0;      ///< no first-appearance output
  std::uint64_t ambiguous = 0;         ///< 2+ first-appearance outputs
  std::uint64_t reused_guard = 0;
  std::uint64_t self_change_history_guard = 0;
  std::uint64_t window_veto = 0;
  std::uint64_t too_few_outputs = 0;
};

/// Full result of a Heuristic-2 pass.
struct H2Result {
  std::vector<H2Label> labels;
  /// Per-transaction change output address (kNoAddr when unlabeled);
  /// indexed by TxIndex. This is what the peeling-chain follower walks.
  std::vector<AddrId> change_of_tx;
  H2SkipStats skipped;

  std::size_t label_count() const noexcept { return labels.size(); }
};

/// Runs Heuristic 2 over the chain. `dice_addrs` is the set of
/// addresses known (via tags) to belong to dice-style games whose
/// payouts rebound to the sender; it is only consulted when
/// options.exempt_dice_rebounds is set.
H2Result apply_heuristic2(const ChainView& view, const H2Options& options,
                          const std::unordered_set<AddrId>& dice_addrs = {});

/// Merges every label into `uf` (change address joined with the
/// spending inputs). Returns the number of successful unions.
std::uint64_t unite_h2_labels(const ChainView& view, const H2Result& result,
                              UnionFind& uf);

/// The paper's time-stepped false-positive estimate (§4.2): a labeled
/// one-time change address is a false positive if it receives again
/// later (beyond the wait window; dice rebounds exempted when enabled).
struct H2FalsePositives {
  std::uint64_t labels = 0;
  std::uint64_t false_positives = 0;

  double rate() const noexcept {
    return labels == 0 ? 0.0
                       : static_cast<double>(false_positives) /
                             static_cast<double>(labels);
  }
};

H2FalsePositives estimate_h2_false_positives(
    const ChainView& view, const H2Result& result, const H2Options& options,
    const std::unordered_set<AddrId>& dice_addrs = {});

}  // namespace fist
