#include "cluster/clustering.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace fist {

Clustering Clustering::from_union_find(UnionFind& uf) {
  Clustering out;
  std::size_t n = uf.size();
  out.assignment_.resize(n);
  std::vector<ClusterId> rep_to_cluster(n, 0xffffffffu);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t rep = uf.find(static_cast<std::uint32_t>(i));
    if (rep_to_cluster[rep] == 0xffffffffu) {
      rep_to_cluster[rep] = static_cast<ClusterId>(out.sizes_.size());
      out.sizes_.push_back(0);
    }
    ClusterId c = rep_to_cluster[rep];
    out.assignment_[i] = c;
    ++out.sizes_[c];
  }
  return out;
}

std::pair<ClusterId, std::uint32_t> Clustering::largest() const {
  if (sizes_.empty()) throw UsageError("Clustering::largest: empty");
  auto it = std::max_element(sizes_.begin(), sizes_.end());
  return {static_cast<ClusterId>(it - sizes_.begin()), *it};
}

std::size_t Clustering::distinct_after_naming(
    const ClusterNaming& naming) const {
  std::unordered_set<std::string> seen_services;
  std::size_t named_clusters = 0;
  // fistlint:allow(unordered-iter) order-free count + set-membership
  // accumulation; only sizes are read out
  for (const auto& [cluster, name] : naming.names()) {
    ++named_clusters;
    seen_services.insert(name.service);
  }
  // Unnamed clusters stay distinct; named ones collapse per service.
  return cluster_count() - named_clusters + seen_services.size();
}

std::uint64_t user_upper_bound(const ChainView& view,
                               const Clustering& clustering) {
  // Sink addresses: received but never spent. They never triggered
  // Heuristic 1, so each singleton sink could be its own user.
  std::vector<std::uint8_t> has_spent(view.address_count(), 0);
  for (const TxView& tx : view.txs())
    for (const InputView& in : tx.inputs)
      if (in.addr != kNoAddr) has_spent[in.addr] = 1;

  // Clusters containing at least one spender, plus singleton clusters
  // of never-spenders.
  std::vector<std::uint8_t> cluster_spends(clustering.cluster_count(), 0);
  for (AddrId a = 0; a < view.address_count(); ++a)
    if (has_spent[a]) cluster_spends[clustering.cluster_of(a)] = 1;

  std::uint64_t spending_clusters = 0;
  for (std::uint8_t f : cluster_spends) spending_clusters += f;

  std::uint64_t sinks = 0;
  for (AddrId a = 0; a < view.address_count(); ++a)
    if (!has_spent[a] && !cluster_spends[clustering.cluster_of(a)]) ++sinks;

  return spending_clusters + sinks;
}

}  // namespace fist
