#include "net/network.hpp"

#include <algorithm>

#include "core/fault.hpp"
#include "core/obs/metrics.hpp"
#include "util/error.hpp"

namespace fist::net {

namespace {

/// Network-simulation counters. The event loop is single-threaded and
/// seeded, so all of these are deterministic per NetConfig.
struct NetMetrics {
  obs::Counter messages;
  obs::Counter bytes;
  obs::Counter dropped;
  obs::Counter txs_submitted;
  obs::Counter blocks_mined;
  obs::Counter propagation_objects;
  obs::Counter propagation_events;

  static const NetMetrics& get() {
    static const NetMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      NetMetrics m;
      m.messages = r.counter("net.messages");
      m.bytes = r.counter("net.bytes");
      m.dropped = r.counter("net.dropped");
      m.txs_submitted = r.counter("net.txs_submitted");
      m.blocks_mined = r.counter("net.blocks_mined");
      m.propagation_objects = r.counter("net.propagation_objects");
      m.propagation_events = r.counter("net.propagation_events");
      return m;
    }();
    return metrics;
  }
};

std::uint64_t link_key(NodeId a, NodeId b) noexcept {
  NodeId lo = std::min(a, b), hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

std::optional<SimTime> Propagation::time_to_fraction(double fraction) const {
  std::vector<SimTime> times;
  times.reserve(first_seen.size());
  for (SimTime t : first_seen)
    if (t >= 0) times.push_back(t);
  std::size_t needed = static_cast<std::size_t>(
      fraction * static_cast<double>(first_seen.size()) + 0.999999);
  if (needed == 0) needed = 1;
  if (times.size() < needed) return std::nullopt;
  std::nth_element(times.begin(),
                   times.begin() + static_cast<std::ptrdiff_t>(needed - 1),
                   times.end());
  return times[needed - 1] - origin_time;
}

double Propagation::coverage() const noexcept {
  if (first_seen.empty()) return 0;
  std::size_t have = 0;
  for (SimTime t : first_seen)
    if (t >= 0) ++have;
  return static_cast<double>(have) / static_cast<double>(first_seen.size());
}

P2PNetwork::P2PNetwork(const NetConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.nodes < 2) throw UsageError("P2PNetwork: need >= 2 nodes");
  nodes_.reserve(config_.nodes);
  for (NodeId i = 0; i < config_.nodes; ++i) nodes_.emplace_back(i, *this);

  // Random topology: each node dials `out_peers` distinct others; links
  // are undirected. A ring backbone first guarantees connectivity.
  for (NodeId i = 0; i < config_.nodes; ++i) {
    NodeId next = (i + 1) % config_.nodes;
    if (!link_latency_.contains(link_key(i, next))) {
      link_latency_[link_key(i, next)] =
          rng_.lognormal(config_.latency_median_ms, config_.latency_sigma) /
          1000.0;
      nodes_[i].add_peer(next);
      nodes_[next].add_peer(i);
    }
  }
  for (NodeId i = 0; i < config_.nodes; ++i) {
    for (std::uint32_t k = 1; k < config_.out_peers; ++k) {
      NodeId j = static_cast<NodeId>(rng_.below(config_.nodes));
      if (j == i || link_latency_.contains(link_key(i, j))) continue;
      link_latency_[link_key(i, j)] =
          rng_.lognormal(config_.latency_median_ms, config_.latency_sigma) /
          1000.0;
      nodes_[i].add_peer(j);
      nodes_[j].add_peer(i);
    }
  }

  // Choose miners.
  std::vector<NodeId> ids(config_.nodes);
  for (NodeId i = 0; i < config_.nodes; ++i) ids[i] = i;
  rng_.shuffle(ids);
  std::uint32_t miners = std::min(config_.miners, config_.nodes);
  miner_ids_.assign(ids.begin(), ids.begin() + miners);
}

Node& P2PNetwork::node(NodeId id) {
  if (id >= nodes_.size()) throw UsageError("P2PNetwork::node: bad id");
  return nodes_[id];
}

void P2PNetwork::send(NodeId from, NodeId to, Message msg) {
  // Deterministic injected drop: keyed by the send ordinal, which is
  // well-defined because the simulator's event loop is single-threaded.
  if (fault::fire("net.deliver", messages_ + dropped_)) {
    ++dropped_;
    NetMetrics::get().dropped.inc();
    return;
  }
  if (config_.drop_rate > 0 && rng_.chance(config_.drop_rate)) {
    ++dropped_;
    NetMetrics::get().dropped.inc();
    return;
  }
  auto it = link_latency_.find(link_key(from, to));
  // Unlinked sends happen only through API misuse; model them with the
  // median latency rather than failing inside the event loop.
  double base = it != link_latency_.end()
                    ? it->second
                    : config_.latency_median_ms / 1000.0;
  // Small per-message jitter on top of the per-link base.
  double delay = base * (0.9 + 0.2 * rng_.unit());
  ++messages_;
  NetMetrics::get().messages.inc();
  if (config_.account_bytes) {
    std::size_t size = wire_size(msg);
    bytes_ += size;
    NetMetrics::get().bytes.add(size);
  }
  loop_.schedule_in(delay, [this, to, m = std::move(msg), from]() {
    nodes_[to].handle(from, m);
  });
}

void P2PNetwork::on_object_seen(NodeId node, const InvItem& what) {
  auto [it, inserted] = seen_.try_emplace(what.hash);
  Propagation& p = it->second;
  if (inserted) {
    p.origin_time = loop_.now();
    p.first_seen.assign(nodes_.size(), -1.0);
    NetMetrics::get().propagation_objects.inc();
  }
  if (p.first_seen[node] < 0) {
    p.first_seen[node] = loop_.now();
    NetMetrics::get().propagation_events.inc();
  }
}

void P2PNetwork::submit_tx(NodeId origin, const Transaction& tx) {
  NetMetrics::get().txs_submitted.inc();
  node(origin).originate_tx(tx);
}

Block P2PNetwork::assemble_block(Node& miner) {
  Block block;
  block.header.version = 1;
  block.header.prev_hash = miner.tip();
  block.header.time = static_cast<std::uint32_t>(loop_.now());
  block.header.bits = config_.pow_bits;

  // Bitcoin-style retargeting from the miner's own view of the chain.
  if (config_.retarget_interval > 0 && miner.chain_length() > 0) {
    const Block* tip_block = miner.find_block(miner.tip());
    std::uint32_t tip_bits =
        tip_block != nullptr ? tip_block->header.bits : config_.pow_bits;
    int height = miner.chain_length();  // height of the block being built
    if (height % static_cast<int>(config_.retarget_interval) == 0) {
      int first_height =
          height - static_cast<int>(config_.retarget_interval);
      const Block* first =
          miner.find_block(miner.chain_hash(first_height));
      if (first != nullptr && tip_block != nullptr) {
        std::int64_t actual =
            static_cast<std::int64_t>(tip_block->header.time) -
            static_cast<std::int64_t>(first->header.time);
        std::int64_t target = static_cast<std::int64_t>(
            config_.retarget_interval * config_.target_spacing_s);
        block.header.bits = next_work_required(tip_bits, actual, target,
                                               config_.pow_bits);
      }
    } else {
      block.header.bits = tip_bits;
    }
  }

  // Coinbase paying an opaque miner script (identity irrelevant here —
  // the economy simulator handles realistic coinbases).
  Transaction coinbase;
  TxIn in;
  in.prevout = OutPoint::coinbase();
  Script tag;
  tag.push(to_bytes(std::string("miner:") + std::to_string(miner.id()) +
                    ":" + std::to_string(blocks_mined_)));
  in.script_sig = tag;
  coinbase.inputs.push_back(in);
  TxOut out;
  out.value = 50 * kCoin;
  out.script_pubkey = Script();  // anyone-can-spend placeholder
  coinbase.outputs.push_back(out);
  block.transactions.push_back(coinbase);

  // Mempool order is a hash-bucket accident; a real miner imposes its
  // own policy. Sort by txid so assembled blocks — and with them every
  // downstream hash — are identical across platforms and libstdc++
  // versions.
  std::vector<std::pair<Hash256, const Transaction*>> pending;
  pending.reserve(miner.mempool().size());
  // fistlint:allow(unordered-iter) collected then fully sorted below
  for (const auto& [txid, tx] : miner.mempool())
    pending.emplace_back(txid, &tx);
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [txid, tx] : pending)
    block.transactions.push_back(*tx);
  block.fix_merkle_root();

  // Real grinding against the easy target: the header carries genuine
  // proof of work.
  while (!check_proof_of_work(block.header.hash(), block.header.bits))
    ++block.header.nonce;
  return block;
}

void P2PNetwork::schedule_next_block() {
  double wait = rng_.exponential(config_.block_interval_s);
  loop_.schedule_in(wait, [this]() {
    NodeId winner = miner_ids_[rng_.below(miner_ids_.size())];
    Block block = assemble_block(nodes_[winner]);
    ++blocks_mined_;
    NetMetrics::get().blocks_mined.inc();
    nodes_[winner].originate_block(block);
    schedule_next_block();
  });
}

void P2PNetwork::start_mining() {
  if (miner_ids_.empty()) throw UsageError("start_mining: no miners");
  schedule_next_block();
}

const Propagation* P2PNetwork::propagation(
    const Hash256& hash) const noexcept {
  auto it = seen_.find(hash);
  return it == seen_.end() ? nullptr : &it->second;
}

}  // namespace fist::net
