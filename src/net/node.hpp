// node.hpp — one simulated Bitcoin peer.
//
// Implements the inv/getdata/tx/block gossip protocol from Figure 1 of
// the paper: transactions flood peer-to-peer to miners; mined blocks
// flood back, which is how a merchant learns its payment settled.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/wire.hpp"

namespace fist::net {

/// Dense node identifier.
using NodeId = std::uint32_t;

/// Callbacks a node uses to talk to the outside world; implemented by
/// P2PNetwork. Keeping this an interface lets tests drive a node
/// directly with scripted deliveries.
class NodeEnv {
 public:
  virtual ~NodeEnv() = default;

  /// Queues `msg` from `from` to `to` with link latency applied.
  virtual void send(NodeId from, NodeId to, Message msg) = 0;

  /// Reports first reception of an object (for propagation metrics).
  virtual void on_object_seen(NodeId node, const InvItem& what) = 0;
};

/// A peer: mempool, known-object sets, block chain copy, gossip logic.
class Node {
 public:
  Node(NodeId id, NodeEnv& env) : id_(id), env_(&env) {}

  NodeId id() const noexcept { return id_; }

  /// Registers a neighbor (one direction; P2PNetwork adds both).
  void add_peer(NodeId peer) { peers_.push_back(peer); }
  const std::vector<NodeId>& peers() const noexcept { return peers_; }

  /// Delivers a message from a peer.
  void handle(NodeId from, const Message& msg);

  /// Injects a locally originated transaction (a wallet spend) and
  /// announces it to all peers.
  void originate_tx(const Transaction& tx);

  /// Accepts a locally mined block and announces it.
  void originate_block(const Block& block);

  bool knows_tx(const Hash256& txid) const noexcept {
    return known_tx_.contains(txid);
  }
  bool knows_block(const Hash256& hash) const noexcept {
    return known_block_.contains(hash);
  }

  /// Transactions available for a miner running on this node.
  const std::unordered_map<Hash256, Transaction>& mempool() const noexcept {
    return mempool_;
  }

  /// This node's current tip hash (null before any block).
  const Hash256& tip() const noexcept { return tip_; }
  int chain_length() const noexcept {
    return static_cast<int>(chain_.size());
  }

  /// A block this node has seen, or nullptr.
  const Block* find_block(const Hash256& hash) const noexcept {
    auto it = blocks_.find(hash);
    return it == blocks_.end() ? nullptr : &it->second;
  }

  /// Hash of this node's chain at `height` (0-based). Returns null hash
  /// when out of range.
  Hash256 chain_hash(int height) const noexcept {
    if (height < 0 || height >= chain_length()) return Hash256{};
    return chain_[static_cast<std::size_t>(height)];
  }

  /// Number of blocks received that did not extend the tip.
  int forks_seen() const noexcept { return forks_seen_; }

 private:
  void accept_tx(const Transaction& tx, NodeId relay_from, bool local);
  void accept_block(const Block& block, NodeId relay_from, bool local);
  void announce(const InvItem& item, NodeId except);

  NodeId id_;
  NodeEnv* env_;
  std::vector<NodeId> peers_;

  std::unordered_set<Hash256> known_tx_;
  std::unordered_set<Hash256> known_block_;
  std::unordered_map<Hash256, Transaction> mempool_;
  std::unordered_map<Hash256, Block> blocks_;
  std::vector<Hash256> chain_;
  Hash256 tip_;
  int forks_seen_ = 0;
};

}  // namespace fist::net
