#include "net/eventloop.hpp"

#include <utility>

namespace fist::net {

std::uint64_t EventLoop::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  std::uint64_t id = next_seq_++;
  queue_.push(Item{when, id, std::move(fn)});
  return id;
}

std::uint64_t EventLoop::schedule_in(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

std::size_t EventLoop::run(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    // Copy out before pop so the handler may schedule new events.
    Item item = queue_.top();
    queue_.pop();
    now_ = item.when;
    item.fn();
    ++executed;
  }
  // A bounded run advances the clock to its deadline (idle time still
  // passes); an unbounded drain leaves the clock at the last event.
  if (until < kNever && now_ < until) now_ = until;
  return executed;
}

}  // namespace fist::net
