#include "net/node.hpp"

namespace fist::net {

void Node::handle(NodeId from, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, InvMsg>) {
          // Ask for everything we have not seen.
          GetDataMsg req;
          for (const InvItem& item : m.items) {
            bool known = item.kind == InvKind::Tx ? knows_tx(item.hash)
                                                  : knows_block(item.hash);
            if (!known) req.items.push_back(item);
          }
          if (!req.items.empty()) env_->send(id_, from, std::move(req));
        } else if constexpr (std::is_same_v<T, GetDataMsg>) {
          for (const InvItem& item : m.items) {
            if (item.kind == InvKind::Tx) {
              auto it = mempool_.find(item.hash);
              if (it != mempool_.end())
                env_->send(id_, from, TxMsg{it->second});
              // A tx already mined into a block is no longer served from
              // the mempool; peers will learn it via the block, as real
              // nodes do.
            } else {
              auto it = blocks_.find(item.hash);
              if (it != blocks_.end())
                env_->send(id_, from, BlockMsg{it->second});
            }
          }
        } else if constexpr (std::is_same_v<T, TxMsg>) {
          accept_tx(m.tx, from, /*local=*/false);
        } else {
          accept_block(m.block, from, /*local=*/false);
        }
      },
      msg);
}

void Node::originate_tx(const Transaction& tx) {
  accept_tx(tx, id_, /*local=*/true);
}

void Node::originate_block(const Block& block) {
  accept_block(block, id_, /*local=*/true);
}

void Node::accept_tx(const Transaction& tx, NodeId relay_from, bool local) {
  Hash256 txid = tx.txid();
  if (known_tx_.contains(txid)) return;
  known_tx_.insert(txid);
  mempool_.emplace(txid, tx);
  env_->on_object_seen(id_, InvItem{InvKind::Tx, txid});
  announce(InvItem{InvKind::Tx, txid}, local ? id_ : relay_from);
}

void Node::accept_block(const Block& block, NodeId relay_from, bool local) {
  Hash256 hash = block.header.hash();
  if (known_block_.contains(hash)) return;
  known_block_.insert(hash);
  blocks_.emplace(hash, block);
  env_->on_object_seen(id_, InvItem{InvKind::Block, hash});

  if (block.header.prev_hash == tip_) {
    chain_.push_back(hash);
    tip_ = hash;
    // Mined transactions leave the mempool.
    for (const Transaction& tx : block.transactions) {
      Hash256 txid = tx.txid();
      known_tx_.insert(txid);
      mempool_.erase(txid);
    }
  } else {
    ++forks_seen_;
  }
  announce(InvItem{InvKind::Block, hash}, local ? id_ : relay_from);
}

void Node::announce(const InvItem& item, NodeId except) {
  for (NodeId peer : peers_) {
    if (peer == except) continue;
    env_->send(id_, peer, InvMsg{{item}});
  }
}

}  // namespace fist::net
