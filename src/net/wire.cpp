#include "net/wire.hpp"

#include <algorithm>
#include <cstring>

#include "chain/blockstore.hpp"  // kMainnetMagic
#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace fist::net {

namespace {

void encode_inv_list(Writer& w, const std::vector<InvItem>& items) {
  w.varint(items.size());
  for (const InvItem& item : items) {
    w.u32le(static_cast<std::uint32_t>(item.kind));
    w.bytes(item.hash.view());
  }
}

std::vector<InvItem> decode_inv_list(Reader& r) {
  std::uint64_t n = r.varint();
  if (n > 50'000) throw ParseError("inv: too many items");
  std::vector<InvItem> items;
  items.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    InvItem item;
    std::uint32_t kind = r.u32le();
    if (kind != 1 && kind != 2) throw ParseError("inv: unknown kind");
    item.kind = static_cast<InvKind>(kind);
    item.hash = Hash256::from_bytes(r.bytes(32));
    items.push_back(item);
  }
  return items;
}

Bytes payload_of(const Message& msg) {
  Writer w;
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, InvMsg>) {
          encode_inv_list(w, m.items);
        } else if constexpr (std::is_same_v<T, GetDataMsg>) {
          encode_inv_list(w, m.items);
        } else if constexpr (std::is_same_v<T, TxMsg>) {
          m.tx.serialize(w);
        } else {
          m.block.serialize(w);
        }
      },
      msg);
  return w.take();
}

}  // namespace

std::string command_of(const Message& msg) {
  switch (msg.index()) {
    case 0: return "inv";
    case 1: return "getdata";
    case 2: return "tx";
    default: return "block";
  }
}

Bytes encode_message(const Message& msg) {
  Bytes payload = payload_of(msg);
  std::string cmd = command_of(msg);

  Writer w;
  w.reserve(24 + payload.size());
  w.u32le(kMainnetMagic);
  // 12-byte zero-padded ASCII command.
  std::array<std::uint8_t, 12> cmd_field{};
  std::copy(cmd.begin(), cmd.end(), cmd_field.begin());
  w.bytes(ByteView(cmd_field));
  w.u32le(static_cast<std::uint32_t>(payload.size()));
  Sha256::Digest check = sha256d(payload);
  w.bytes(ByteView(check.data(), 4));
  w.bytes(payload);
  return w.take();
}

Message decode_message(ByteView frame) {
  Reader r(frame);
  if (r.u32le() != kMainnetMagic) throw ParseError("message: bad magic");
  ByteView cmd_field = r.bytes(12);
  std::string cmd;
  for (std::uint8_t c : cmd_field) {
    if (c == 0) break;
    cmd.push_back(static_cast<char>(c));
  }
  // Reject commands with embedded NULs followed by garbage.
  bool seen_zero = false;
  for (std::uint8_t c : cmd_field) {
    if (c == 0) seen_zero = true;
    else if (seen_zero) throw ParseError("message: malformed command field");
  }
  std::uint32_t length = r.u32le();
  ByteView checksum = r.bytes(4);
  ByteView payload = r.bytes(length);
  r.expect_eof();

  Sha256::Digest check = sha256d(payload);
  if (!std::equal(checksum.begin(), checksum.end(), check.begin()))
    throw ParseError("message: checksum mismatch");

  Reader pr(payload);
  if (cmd == "inv") {
    InvMsg m{decode_inv_list(pr)};
    pr.expect_eof();
    return m;
  }
  if (cmd == "getdata") {
    GetDataMsg m{decode_inv_list(pr)};
    pr.expect_eof();
    return m;
  }
  if (cmd == "tx") {
    TxMsg m{Transaction::deserialize(pr)};
    pr.expect_eof();
    return m;
  }
  if (cmd == "block") {
    BlockMsg m{Block::deserialize(pr)};
    pr.expect_eof();
    return m;
  }
  throw ParseError("message: unknown command '" + cmd + "'");
}

std::size_t wire_size(const Message& msg) {
  // 24-byte header + payload. Payload size without building the bytes:
  return 24 + payload_of(msg).size();
}

}  // namespace fist::net
