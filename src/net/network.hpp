// network.hpp — the simulated P2P network.
//
// Owns the nodes, the random topology, the latency model and the event
// loop; provides transaction injection, proof-of-work mining, and the
// propagation metrics behind the Figure-1 experiment ("how long until a
// merchant sees the block that pays it?").
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/pow.hpp"
#include "net/eventloop.hpp"
#include "net/node.hpp"
#include "util/rng.hpp"

namespace fist::net {

/// Network construction parameters.
struct NetConfig {
  std::uint32_t nodes = 200;       ///< peer count
  std::uint32_t out_peers = 8;     ///< outbound connections per node
  double latency_median_ms = 80;   ///< per-link latency median
  double latency_sigma = 0.6;      ///< log-normal shape
  std::uint32_t miners = 10;       ///< how many nodes mine
  double block_interval_s = 600;   ///< mean time between blocks
  std::uint32_t pow_bits = fist::kEasyBits;  ///< mining target / difficulty floor
  /// Recompute difficulty every N blocks from observed block times
  /// (Bitcoin-style; 0 = fixed difficulty). pow_bits acts as the
  /// minimum-difficulty limit.
  std::uint32_t retarget_interval = 0;
  double target_spacing_s = 600;   ///< intended block spacing for retargets
  bool account_bytes = false;      ///< track wire bytes (costs encoding)
  /// Fraction of messages silently lost in flight (fault injection).
  /// Gossip redundancy should mask moderate loss.
  double drop_rate = 0.0;
  std::uint64_t seed = 1;
};

/// Propagation record for one object (tx or block).
struct Propagation {
  SimTime origin_time = 0;
  std::vector<SimTime> first_seen;  ///< per node; <0 = never

  /// Time from origin until `fraction` of nodes had the object;
  /// nullopt if coverage never reached it.
  std::optional<SimTime> time_to_fraction(double fraction) const;

  /// Fraction of nodes that ever saw the object.
  double coverage() const noexcept;
};

/// The simulated network.
class P2PNetwork final : public NodeEnv {
 public:
  explicit P2PNetwork(const NetConfig& config);

  /// NodeEnv: queue a message with sampled link latency.
  void send(NodeId from, NodeId to, Message msg) override;
  void on_object_seen(NodeId node, const InvItem& what) override;

  /// Injects a transaction at `origin` at the current simulated time.
  void submit_tx(NodeId origin, const Transaction& tx);

  /// Starts the Poisson mining process (call once, then run()).
  void start_mining();

  /// Runs the event loop until simulated time `until`.
  void run_until(SimTime until) { loop_.run(until); }

  EventLoop& loop() noexcept { return loop_; }
  Node& node(NodeId id);
  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Metrics for an object hash; nullptr if never seen anywhere.
  const Propagation* propagation(const Hash256& hash) const noexcept;

  /// Total messages delivered / wire bytes (if accounting enabled).
  std::uint64_t messages_delivered() const noexcept { return messages_; }
  std::uint64_t wire_bytes() const noexcept { return bytes_; }

  /// Messages lost to fault injection (drop_rate).
  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// Blocks mined so far across all miners.
  int blocks_mined() const noexcept { return blocks_mined_; }

  Rng& rng() noexcept { return rng_; }

 private:
  void schedule_next_block();
  Block assemble_block(Node& miner);

  NetConfig config_;
  Rng rng_;
  EventLoop loop_;
  std::vector<Node> nodes_;
  std::vector<NodeId> miner_ids_;
  // Symmetric link latencies: key = (lo<<32)|hi node ids.
  std::unordered_map<std::uint64_t, double> link_latency_;
  std::unordered_map<Hash256, Propagation> seen_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t dropped_ = 0;
  int blocks_mined_ = 0;
};

}  // namespace fist::net
