// wire.hpp — Bitcoin P2P message framing and payloads.
//
// Messages exchanged by simulated nodes carry real wire encodings:
// a 24-byte header (magic, ASCII command, length, SHA256d checksum)
// followed by the payload. The simulator passes decoded structs for
// speed, but every message type round-trips through these encoders so
// the protocol layer is genuine and testable.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "chain/block.hpp"
#include "chain/transaction.hpp"
#include "util/bytes.hpp"

namespace fist::net {

/// Inventory item types (protocol values).
enum class InvKind : std::uint32_t {
  Tx = 1,
  Block = 2,
};

/// One inventory entry: a typed object hash.
struct InvItem {
  InvKind kind = InvKind::Tx;
  Hash256 hash;

  bool operator==(const InvItem&) const = default;
};

/// "inv" — announce objects a node has.
struct InvMsg {
  std::vector<InvItem> items;
  bool operator==(const InvMsg&) const = default;
};

/// "getdata" — request announced objects.
struct GetDataMsg {
  std::vector<InvItem> items;
  bool operator==(const GetDataMsg&) const = default;
};

/// "tx" — a full transaction.
struct TxMsg {
  Transaction tx;
  bool operator==(const TxMsg&) const = default;
};

/// "block" — a full block.
struct BlockMsg {
  Block block;
  bool operator==(const BlockMsg&) const = default;
};

/// Any P2P message.
using Message = std::variant<InvMsg, GetDataMsg, TxMsg, BlockMsg>;

/// The ASCII command for a message ("inv", "getdata", "tx", "block").
std::string command_of(const Message& msg);

/// Encodes header + payload (Bitcoin framing, mainnet magic).
Bytes encode_message(const Message& msg);

/// Decodes one framed message; throws ParseError on bad framing,
/// command, length or checksum.
Message decode_message(ByteView frame);

/// Approximate wire size in bytes (header + payload) — used by the
/// bandwidth accounting in the simulator without re-encoding.
std::size_t wire_size(const Message& msg);

}  // namespace fist::net
