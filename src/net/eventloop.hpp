// eventloop.hpp — a deterministic discrete-event scheduler.
//
// The P2P simulator runs on simulated time: every message delivery and
// mining completion is an event with a timestamp. Events at equal times
// fire in schedule order (a stable tie-break), so runs replay exactly.
//
// Single-threaded by construction: the loop and its delivery queue are
// only ever driven from one thread, hold no locks, and therefore carry
// no rank in the lock hierarchy (src/core/lock_order.hpp) — adding
// cross-thread scheduling here would need a ranked mutex first.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fist::net {

/// Simulated seconds (fractional).
using SimTime = double;

/// Deterministic discrete-event loop.
class EventLoop {
 public:
  /// Schedules `fn` to run at absolute simulated time `when` (clamped
  /// to now). Returns the event id.
  std::uint64_t schedule_at(SimTime when, std::function<void()> fn);

  /// Schedules `fn` after a relative delay (>= 0).
  std::uint64_t schedule_in(SimTime delay, std::function<void()> fn);

  /// "Never": the default run() deadline (drain the queue).
  static constexpr SimTime kNever = 1e18;

  /// Runs events until the queue is empty or `until` is passed.
  /// Returns the number of events executed. With an explicit deadline,
  /// now() advances to it even if the queue drains early; the default
  /// unbounded drain leaves now() at the last executed event.
  std::size_t run(SimTime until = kNever);

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Events waiting in the queue.
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Item {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace fist::net
