// error.hpp — exception hierarchy for fistful.
//
// The library signals unrecoverable precondition and format violations
// with exceptions derived from fist::Error, per the project error-handling
// policy (C++ Core Guidelines E.2: throw to signal that a function cannot
// perform its task).
#pragma once

#include <stdexcept>
#include <string>

namespace fist {

/// Root of the fistful exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed serialized data (truncated buffer, bad magic, oversized
/// length prefix, invalid checksum...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse: " + what) {}
};

/// A consensus-style validation failure (double spend, value created from
/// nothing, premature coinbase spend...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation: " + what) {}
};

/// Misuse of a library API (lookup of an unknown id, out-of-range
/// argument...). Distinct from ParseError so callers can distinguish
/// "bad data" from "bad code".
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error("usage: " + what) {}
};

/// A genuine I/O fault (file cannot be opened, a write failed, a read
/// came back short at the OS level...). Distinct from UsageError —
/// nothing was misused, the environment failed — and from ParseError —
/// the bytes never arrived, so there was nothing to parse. Lenient
/// ingest treats IoError on a record the same way it treats ParseError:
/// quarantine and continue.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io: " + what) {}
};

/// Cooperative-cancellation signal: work was torn down on request (a
/// failed strict-mode pipeline stage cancelling its executor), not
/// because anything was wrong with the data.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what)
      : Error("cancelled: " + what) {}
};

}  // namespace fist
