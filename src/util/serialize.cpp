#include "util/serialize.hpp"

#include "util/error.hpp"

namespace fist {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16le(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32le(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64le(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::i32le(std::int32_t v) { u32le(static_cast<std::uint32_t>(v)); }
void Writer::i64le(std::int64_t v) { u64le(static_cast<std::uint64_t>(v)); }

void Writer::varint(std::uint64_t v) {
  if (v < 0xfd) {
    u8(static_cast<std::uint8_t>(v));
  } else if (v <= 0xffff) {
    u8(0xfd);
    u16le(static_cast<std::uint16_t>(v));
  } else if (v <= 0xffffffffULL) {
    u8(0xfe);
    u32le(static_cast<std::uint32_t>(v));
  } else {
    u8(0xff);
    u64le(v);
  }
}

void Writer::bytes(ByteView v) { append(buf_, v); }

void Writer::var_bytes(ByteView v) {
  varint(v.size());
  bytes(v);
}

void Writer::var_string(const std::string& s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

ByteView Reader::need(std::size_t n) {
  if (remaining() < n) throw ParseError("unexpected end of input");
  ByteView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t Reader::u8() { return need(1)[0]; }

std::uint16_t Reader::u16le() {
  ByteView b = need(2);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t Reader::u32le() {
  ByteView b = need(4);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t Reader::u64le() {
  std::uint64_t lo = u32le();
  std::uint64_t hi = u32le();
  return lo | (hi << 32);
}

std::int32_t Reader::i32le() { return static_cast<std::int32_t>(u32le()); }
std::int64_t Reader::i64le() { return static_cast<std::int64_t>(u64le()); }

std::uint64_t Reader::varint() {
  std::uint8_t tag = u8();
  if (tag < 0xfd) return tag;
  if (tag == 0xfd) {
    std::uint64_t v = u16le();
    if (v < 0xfd) throw ParseError("non-canonical CompactSize");
    return v;
  }
  if (tag == 0xfe) {
    std::uint64_t v = u32le();
    if (v <= 0xffff) throw ParseError("non-canonical CompactSize");
    return v;
  }
  std::uint64_t v = u64le();
  if (v <= 0xffffffffULL) throw ParseError("non-canonical CompactSize");
  return v;
}

ByteView Reader::bytes(std::size_t n) { return need(n); }

Bytes Reader::var_bytes(std::size_t max) {
  std::uint64_t n = varint();
  if (n > max) throw ParseError("length prefix exceeds limit");
  return to_bytes(need(static_cast<std::size_t>(n)));
}

std::string Reader::var_string(std::size_t max) {
  std::uint64_t n = varint();
  if (n > max) throw ParseError("length prefix exceeds limit");
  ByteView b = need(static_cast<std::size_t>(n));
  return std::string(b.begin(), b.end());
}

void Reader::expect_eof() const {
  if (!empty()) throw ParseError("trailing bytes after value");
}

}  // namespace fist
