// serialize.hpp — Bitcoin wire-format primitives.
//
// Writer appends little-endian integers, CompactSize ("varint") lengths
// and raw byte runs to an owned buffer. Reader consumes the same from a
// borrowed view, throwing ParseError on truncation or malformed input.
// These two types carry every byte that crosses the library's
// serialization boundary (transactions, blocks, network messages, the
// blk-file store).
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace fist {

/// Append-only serializer producing Bitcoin wire format.
class Writer {
 public:
  Writer() = default;

  /// Pre-allocates the underlying buffer.
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v);
  void u16le(std::uint16_t v);
  void u32le(std::uint32_t v);
  void u64le(std::uint64_t v);
  void i32le(std::int32_t v);
  void i64le(std::int64_t v);

  /// Bitcoin CompactSize encoding: 1, 3, 5 or 9 bytes.
  void varint(std::uint64_t v);

  /// Raw bytes, no length prefix.
  void bytes(ByteView v);

  /// CompactSize length prefix followed by the bytes.
  void var_bytes(ByteView v);

  /// CompactSize length prefix followed by the string's raw bytes.
  void var_string(const std::string& s);

  /// Read-only view of everything written so far.
  ByteView view() const noexcept { return buf_; }

  /// Moves the accumulated buffer out; the writer is left empty.
  Bytes take() noexcept { return std::move(buf_); }

  std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consuming deserializer over a borrowed byte view.
///
/// The Reader never copies payload bytes until asked; all accessors throw
/// ParseError if fewer bytes remain than requested.
class Reader {
 public:
  explicit Reader(ByteView data) noexcept : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16le();
  std::uint32_t u32le();
  std::uint64_t u64le();
  std::int32_t i32le();
  std::int64_t i64le();

  /// Decodes a CompactSize. Rejects non-canonical encodings (a value
  /// that should have used a shorter form), matching Bitcoin Core's
  /// strict mode.
  std::uint64_t varint();

  /// Consumes exactly `n` bytes and returns a view into the input.
  ByteView bytes(std::size_t n);

  /// Consumes a CompactSize length then that many bytes.
  /// `max` guards against absurd length prefixes on truncated input.
  Bytes var_bytes(std::size_t max = kMaxVarBytes);

  /// Consumes a CompactSize length then that many bytes as a string.
  std::string var_string(std::size_t max = kMaxVarBytes);

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool empty() const noexcept { return remaining() == 0; }
  std::size_t position() const noexcept { return pos_; }

  /// Throws ParseError unless the reader consumed its entire input.
  void expect_eof() const;

  /// Default clamp on var_bytes length prefixes (32 MiB, matching the
  /// Bitcoin protocol's maximum message size).
  static constexpr std::size_t kMaxVarBytes = 32u * 1024 * 1024;

 private:
  ByteView need(std::size_t n);

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace fist
