// hex.hpp — lowercase hexadecimal encoding/decoding.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace fist {

/// Encodes `data` as lowercase hex ("" for empty input).
std::string to_hex(ByteView data);

/// Encodes `data` as hex with byte order reversed. Bitcoin displays
/// txids/block hashes in reversed byte order; this matches that
/// convention.
std::string to_hex_reversed(ByteView data);

/// Decodes a hex string (upper or lower case accepted).
/// Throws ParseError on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// True iff `hex` is a valid even-length hex string.
bool is_hex(std::string_view hex) noexcept;

}  // namespace fist
