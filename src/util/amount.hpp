// amount.hpp — monetary amounts in satoshis.
//
// Amounts are signed 64-bit satoshi counts, mirroring Bitcoin Core's
// CAmount. Arithmetic helpers check the 21M-coin range so accounting
// errors in the simulator or analysis surface as exceptions instead of
// silent overflow.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace fist {

/// A monetary amount in satoshis (1e-8 BTC). Signed so that balance
/// deltas can be represented directly.
using Amount = std::int64_t;

/// Satoshis per bitcoin.
inline constexpr Amount kCoin = 100'000'000;

/// Total supply cap: 21 million BTC.
inline constexpr Amount kMaxMoney = 21'000'000 * kCoin;

/// True iff `a` lies in the valid range [0, kMaxMoney].
constexpr bool money_range(Amount a) noexcept {
  return a >= 0 && a <= kMaxMoney;
}

/// Converts whole bitcoins to satoshis (checked).
constexpr Amount btc(std::int64_t coins) {
  Amount a = coins * kCoin;
  if (!money_range(a)) throw UsageError("btc(): out of money range");
  return a;
}

/// Converts a fractional bitcoin value to satoshis, rounding to nearest.
// fistlint:allow(float-amount) declared conversion boundary (see amount.cpp)
Amount btc_fraction(double coins);

/// Checked addition of two non-negative amounts.
Amount add_money(Amount a, Amount b);

/// Formats satoshis as a "12345.67890000" BTC decimal string, trimming
/// to 8 fractional digits (trailing zeros kept for alignment when
/// `fixed` is true).
std::string format_btc(Amount a, bool fixed = false);

/// Formats satoshis as BTC rounded to the nearest whole coin — the
/// precision used by the paper's Table 2/Table 3.
std::string format_btc_whole(Amount a);

}  // namespace fist
