#include "util/amount.hpp"

#include <cmath>
#include <cstdio>

namespace fist {

// fistlint:allow-file(float-amount) this file IS the sanctioned
// BTC<->satoshi conversion boundary; everything downstream is integer
Amount btc_fraction(double coins) {
  if (!(coins >= 0) || coins > 21'000'000.0)
    throw UsageError("btc_fraction(): out of money range");
  return static_cast<Amount>(std::llround(coins * static_cast<double>(kCoin)));
}

Amount add_money(Amount a, Amount b) {
  if (!money_range(a) || !money_range(b))
    throw UsageError("add_money(): operand out of range");
  Amount sum = a + b;
  if (!money_range(sum)) throw UsageError("add_money(): sum out of range");
  return sum;
}

std::string format_btc(Amount a, bool fixed) {
  bool neg = a < 0;
  std::uint64_t v = neg ? static_cast<std::uint64_t>(-(a + 1)) + 1
                        : static_cast<std::uint64_t>(a);
  std::uint64_t whole = v / static_cast<std::uint64_t>(kCoin);
  std::uint64_t frac = v % static_cast<std::uint64_t>(kCoin);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%llu.%08llu", neg ? "-" : "",
                static_cast<unsigned long long>(whole),
                static_cast<unsigned long long>(frac));
  std::string s(buf);
  if (!fixed) {
    // Trim trailing zeros but keep at least one fractional digit.
    std::size_t last = s.find_last_not_of('0');
    if (s[last] == '.') ++last;
    s.erase(last + 1);
  }
  return s;
}

std::string format_btc_whole(Amount a) {
  double coins = static_cast<double>(a) / static_cast<double>(kCoin);
  long long rounded = std::llround(coins);
  return std::to_string(rounded);
}

}  // namespace fist
