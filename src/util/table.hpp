// table.hpp — aligned ASCII table rendering.
//
// The benchmark harnesses print "paper vs measured" tables; this tiny
// formatter keeps their output consistent and readable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fist {

/// Column alignment for TextTable.
enum class Align { Left, Right };

/// Accumulates rows of strings and renders them with padded columns.
///
/// Usage:
///   TextTable t({"Service", "Peels", "BTC"});
///   t.row({"Mt. Gox", "11", "492"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns = {});

  /// Appends a data row; must have exactly as many cells as the header.
  void row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void separator();

  /// Renders the full table, including header and rule.
  std::string render() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Convenience: renders straight to a stream.
std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace fist
