#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace fist {

TextTable::TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  if (header_.empty()) throw UsageError("TextTable: empty header");
  if (aligns_.empty()) aligns_.assign(header_.size(), Align::Left);
  if (aligns_.size() != header_.size())
    throw UsageError("TextTable: aligns/header size mismatch");
}

void TextTable::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw UsageError("TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::separator() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto pad = [&](const std::string& s, std::size_t c) {
    std::string out;
    std::size_t fill = width[c] - s.size();
    if (aligns_[c] == Align::Right) out.append(fill, ' ');
    out += s;
    if (aligns_[c] == Align::Left) out.append(fill, ' ');
    return out;
  };

  std::ostringstream os;
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) os << '+';
    }
    os << '\n';
  };

  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << ' ' << pad(header_[c], c) << ' ';
    if (c + 1 < header_.size()) os << '|';
  }
  os << '\n';
  rule();
  for (const auto& r : rows_) {
    if (r.empty()) {
      rule();
      continue;
    }
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << ' ' << pad(r[c], c) << ' ';
      if (c + 1 < r.size()) os << '|';
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

}  // namespace fist
