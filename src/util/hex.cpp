#include "util/hex.hpp"

#include <array>

#include "util/error.hpp"

namespace fist {

namespace {

constexpr char kDigits[] = "0123456789abcdef";

// Maps an ASCII character to its hex nibble value, or -1.
constexpr int nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

std::string to_hex_reversed(ByteView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (auto it = data.rbegin(); it != data.rend(); ++it) {
    out.push_back(kDigits[*it >> 4]);
    out.push_back(kDigits[*it & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw ParseError("hex string has odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw ParseError("invalid hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool is_hex(std::string_view hex) noexcept {
  if (hex.size() % 2 != 0) return false;
  for (char c : hex)
    if (nibble(c) < 0) return false;
  return true;
}

}  // namespace fist
