#include "util/rng.hpp"

#include <cmath>

namespace fist {

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw UsageError("Rng::zipf: n == 0");
  // Rejection-free inverse-CDF over the (small) support. n here is the
  // number of *categories* (services, merchants), typically < 10^4, so a
  // linear scan is fine and keeps the stream consumption deterministic.
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r)
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
  double target = unit() * total;
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
    if (target < acc) return r;
  }
  return n - 1;
}

std::size_t Rng::weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0) throw UsageError("Rng::weighted: negative weight");
    total += w;
  }
  if (total <= 0) throw UsageError("Rng::weighted: no positive weight");
  double target = unit() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace fist
