// timeutil.hpp — the simulation time axis.
//
// All timestamps in fistful are unix epoch seconds (as in Bitcoin block
// headers). Helpers convert to/from calendar dates so experiments can be
// anchored at the paper's study period (2009-01-03 .. 2013-04-30).
#pragma once

#include <cstdint>
#include <string>

namespace fist {

/// Unix epoch seconds.
using Timestamp = std::int64_t;

inline constexpr Timestamp kSecond = 1;
inline constexpr Timestamp kMinute = 60;
inline constexpr Timestamp kHour = 3600;
inline constexpr Timestamp kDay = 86400;
inline constexpr Timestamp kWeek = 7 * kDay;

/// The Bitcoin genesis block timestamp: 2009-01-03 18:15:05 UTC.
inline constexpr Timestamp kGenesisTime = 1231006505;

/// Builds a timestamp from a UTC calendar date (midnight).
/// Valid for years 1970..2262; days/months are 1-based.
Timestamp from_date(int year, int month, int day);

/// Formats a timestamp as "YYYY-MM-DD" (UTC).
std::string format_date(Timestamp t);

/// Formats a timestamp as "YYYY-MM-DD HH:MM:SS" (UTC).
std::string format_datetime(Timestamp t);

}  // namespace fist
