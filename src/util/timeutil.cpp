#include "util/timeutil.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace fist {

namespace {

constexpr bool is_leap(int y) noexcept {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr int days_in_month(int y, int m) noexcept {
  constexpr int d[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return d[m - 1];
}

// Civil-date <-> day-count conversion (Howard Hinnant's algorithm).
constexpr std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

constexpr void civil_from_days(std::int64_t z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

}  // namespace

Timestamp from_date(int year, int month, int day) {
  if (year < 1970 || year > 2262 || month < 1 || month > 12 || day < 1 ||
      day > days_in_month(year, month))
    throw UsageError("from_date(): invalid calendar date");
  return days_from_civil(year, month, day) * kDay;
}

std::string format_date(Timestamp t) {
  std::int64_t days = t / kDay;
  if (t < 0 && t % kDay != 0) --days;
  int y, m, d;
  civil_from_days(days, y, m, d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

std::string format_datetime(Timestamp t) {
  std::int64_t days = t / kDay;
  std::int64_t rem = t % kDay;
  if (rem < 0) {
    rem += kDay;
    --days;
  }
  int y, m, d;
  civil_from_days(days, y, m, d);
  int hh = static_cast<int>(rem / kHour);
  int mm = static_cast<int>((rem % kHour) / kMinute);
  int ss = static_cast<int>(rem % kMinute);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", y, m, d, hh,
                mm, ss);
  return buf;
}

}  // namespace fist
