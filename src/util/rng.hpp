// rng.hpp — deterministic random number generation.
//
// Every stochastic component in fistful (the economy simulator, the P2P
// latency model, workload generators) draws from an explicitly seeded
// Rng so that whole experiments replay bit-for-bit. No component may
// touch std::random_device or global generator state.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace fist {

/// Deterministic PRNG with workload-generator conveniences.
///
/// Wraps std::mt19937_64. Copyable; copies continue the same stream
/// independently, which makes it easy to fork per-actor streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Derives an independent child generator. Used to give each simulated
  /// actor its own stream so inserting an actor does not perturb others.
  Rng fork() { return Rng(next()); }

  /// Next raw 64-bit value.
  std::uint64_t next() { return gen_(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw UsageError("Rng::uniform: lo > hi");
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) throw UsageError("Rng::below: n == 0");
    return uniform(0, n - 1);
  }

  /// Uniform double in [0, 1).
  double unit() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) { return unit() < p; }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean) {
    if (mean <= 0) throw UsageError("Rng::exponential: mean <= 0");
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  /// Log-normal sample parameterized by the median and a shape factor
  /// sigma. Heavy-tailed; models transaction sizes well.
  double lognormal(double median, double sigma) {
    if (median <= 0) throw UsageError("Rng::lognormal: median <= 0");
    return std::lognormal_distribution<double>(std::log(median), sigma)(gen_);
  }

  /// Normally distributed sample.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Zipf-like rank selection over [0, n): rank r is chosen with weight
  /// 1/(r+1)^s. Used for popularity skew (a few services dominate).
  std::size_t zipf(std::size_t n, double s = 1.0);

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw UsageError("Rng::pick: empty span");
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Weighted index selection; weights need not be normalized.
  /// Requires at least one strictly positive weight.
  std::size_t weighted(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Underlying engine, for interoperating with <random> distributions.
  std::mt19937_64& engine() noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace fist
