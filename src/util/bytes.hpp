// bytes.hpp — core byte-container aliases used throughout fistful.
//
// All binary data in the library is carried as contiguous uint8_t
// sequences. `Bytes` owns, `ByteView` borrows (read-only).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace fist {

/// Owning byte buffer.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over a byte sequence.
using ByteView = std::span<const std::uint8_t>;

/// Builds an owning buffer from a view.
inline Bytes to_bytes(ByteView v) { return Bytes(v.begin(), v.end()); }

/// Builds an owning buffer from the raw bytes of a string (no encoding
/// applied; useful for test fixtures and message payloads).
inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Concatenates any number of byte views into a fresh buffer.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  std::size_t total = (static_cast<std::size_t>(0) + ... + views.size());
  out.reserve(total);
  (append(out, ByteView(views)), ...);
  return out;
}

/// Constant-time-ish equality for fixed-size digests. Not used for
/// secrets in this library, but avoids surprising short-circuits when
/// comparing attacker-influenced data.
inline bool equal_ct(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace fist
