#include "tag/naming.hpp"

#include <algorithm>
#include <map>

namespace fist {

ClusterNaming::ClusterNaming(std::span<const ClusterId> cluster_of,
                             std::span<const std::uint32_t> cluster_sizes,
                             const TagStore& tags) {
  // Collect votes: cluster -> service -> (votes, best category).
  struct Votes {
    std::map<std::string, std::size_t> by_service;
    std::map<std::string, Category> category_of;
  };
  std::unordered_map<ClusterId, Votes> votes;
  // fistlint:allow(unordered-iter) commutative vote counting: keyed
  // increments plus an order-free min-merge for the category
  for (const auto& [addr, tag] : tags.all()) {
    if (addr >= cluster_of.size()) continue;
    ClusterId c = cluster_of[addr];
    Votes& v = votes[c];
    v.by_service[tag.service]++;
    // Feeds disagreeing on a service's category resolve to the
    // smallest enum value — any-order deterministic, unlike
    // first-tag-wins (which inherits the bucket order).
    auto [it, inserted] = v.category_of.emplace(tag.service, tag.category);
    if (!inserted && tag.category < it->second) it->second = tag.category;
  }

  // fistlint:allow(unordered-iter) keyed emplaces and commutative
  // counts only; contested_ (the one ordered product) is sorted below
  for (auto& [cluster, v] : votes) {
    // Winner = most votes; ties broken lexicographically (deterministic).
    const std::string* best = nullptr;
    std::size_t best_votes = 0;
    for (const auto& [service, n] : v.by_service) {
      if (n > best_votes) {
        best = &service;
        best_votes = n;
      }
    }
    ClusterName name;
    name.service = *best;
    name.category = v.category_of[*best];
    name.tag_votes = best_votes;
    name.distinct_services = v.by_service.size();
    if (name.distinct_services > 1) contested_.push_back(cluster);
    for (const auto& [service, n] : v.by_service)
      service_cluster_count_[service]++;
    names_.emplace(cluster, std::move(name));
    if (cluster < cluster_sizes.size())
      named_addresses_ += cluster_sizes[cluster];
  }
  // The loop above visits clusters in bucket order; contested_ must
  // not inherit it.
  std::sort(contested_.begin(), contested_.end());
}

const ClusterName* ClusterNaming::name_of(ClusterId c) const noexcept {
  auto it = names_.find(c);
  return it == names_.end() ? nullptr : &it->second;
}

std::size_t ClusterNaming::clusters_for_service(
    const std::string& service) const noexcept {
  auto it = service_cluster_count_.find(service);
  return it == service_cluster_count_.end() ? 0 : it->second;
}

}  // namespace fist
