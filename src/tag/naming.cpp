#include "tag/naming.hpp"

#include <map>

namespace fist {

ClusterNaming::ClusterNaming(std::span<const ClusterId> cluster_of,
                             std::span<const std::uint32_t> cluster_sizes,
                             const TagStore& tags) {
  // Collect votes: cluster -> service -> (votes, best category).
  struct Votes {
    std::map<std::string, std::size_t> by_service;
    std::map<std::string, Category> category_of;
  };
  std::unordered_map<ClusterId, Votes> votes;
  for (const auto& [addr, tag] : tags.all()) {
    if (addr >= cluster_of.size()) continue;
    ClusterId c = cluster_of[addr];
    Votes& v = votes[c];
    v.by_service[tag.service]++;
    v.category_of.emplace(tag.service, tag.category);
  }

  for (auto& [cluster, v] : votes) {
    // Winner = most votes; ties broken lexicographically (deterministic).
    const std::string* best = nullptr;
    std::size_t best_votes = 0;
    for (const auto& [service, n] : v.by_service) {
      if (n > best_votes) {
        best = &service;
        best_votes = n;
      }
    }
    ClusterName name;
    name.service = *best;
    name.category = v.category_of[*best];
    name.tag_votes = best_votes;
    name.distinct_services = v.by_service.size();
    if (name.distinct_services > 1) contested_.push_back(cluster);
    for (const auto& [service, n] : v.by_service)
      service_cluster_count_[service]++;
    names_.emplace(cluster, std::move(name));
    if (cluster < cluster_sizes.size())
      named_addresses_ += cluster_sizes[cluster];
  }
}

const ClusterName* ClusterNaming::name_of(ClusterId c) const noexcept {
  auto it = names_.find(c);
  return it == names_.end() ? nullptr : &it->second;
}

std::size_t ClusterNaming::clusters_for_service(
    const std::string& service) const noexcept {
  auto it = service_cluster_count_.find(service);
  return it == service_cluster_count_.end() ? 0 : it->second;
}

}  // namespace fist
