#include "tag/tagstore.hpp"

namespace fist {

std::string_view tag_source_name(TagSource s) noexcept {
  switch (s) {
    case TagSource::Observed: return "observed";
    case TagSource::SelfAdvertised: return "self-advertised";
    case TagSource::Scraped: return "scraped";
  }
  return "?";
}

void TagStore::add(AddrId addr, Tag tag) {
  auto it = tags_.find(addr);
  if (it == tags_.end()) {
    tags_.emplace(addr, std::move(tag));
    return;
  }
  Tag& existing = it->second;
  if (static_cast<int>(tag.source) < static_cast<int>(existing.source)) {
    // Strictly more reliable source wins.
    existing = std::move(tag);
    return;
  }
  if (tag.source == existing.source && tag.service != existing.service)
    conflicts_.emplace_back(addr, std::move(tag));
  // Otherwise: equal-or-less reliable duplicate; keep the original.
}

const Tag* TagStore::find(AddrId addr) const noexcept {
  auto it = tags_.find(addr);
  return it == tags_.end() ? nullptr : &it->second;
}

std::size_t TagStore::count_by_source(TagSource s) const noexcept {
  std::size_t n = 0;
  // fistlint:allow(unordered-iter) commutative count
  for (const auto& [addr, tag] : tags_)
    if (tag.source == s) ++n;
  return n;
}

}  // namespace fist
