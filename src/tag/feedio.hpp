// feedio.hpp — tag-feed serialization.
//
// A tag feed is the §3 labeling data as a file: one CSV row per
// labeled address. This is the interchange format between a collector
// (the simulator, a scraper, hand-curated lists) and the pipeline:
//
//   address,service,category,source
//   1EHNa6Q4Jz2uvNExL497mE43ikXhwF6kZm,Mt. Gox,exchanges,observed
#pragma once

#include <iosfwd>
#include <vector>

#include "tag/tagstore.hpp"

namespace fist {

/// Writes the feed as CSV (with header).
void write_tag_feed(std::ostream& os, const std::vector<TagEntry>& feed);

/// Parses a CSV tag feed. Throws ParseError with a line number on any
/// malformed row (bad address, unknown category or source).
std::vector<TagEntry> read_tag_feed(std::istream& is);

}  // namespace fist
