// naming.hpp — propagating tags onto clusters.
//
// The amplification step of §4: a handful of hand-tagged addresses name
// entire clusters ("transitive tainting"). ClusterNaming joins an
// address→cluster assignment with a TagStore, resolves per-cluster
// names, and reports the amplification ratio and super-cluster
// symptoms (one cluster claiming many distinct services).
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "tag/tagstore.hpp"

namespace fist {

/// Dense cluster identifier (as produced by cluster/clustering.hpp).
using ClusterId = std::uint32_t;

/// Resolved identity of one cluster.
struct ClusterName {
  std::string service;                 ///< winning service name
  Category category = Category::Misc;
  std::size_t tag_votes = 0;           ///< tags agreeing with the winner
  std::size_t distinct_services = 0;   ///< distinct names seen in cluster
};

/// Result of joining tags with a clustering.
class ClusterNaming {
 public:
  /// `cluster_of[a]` maps every AddrId to its cluster;
  /// `cluster_sizes[c]` gives each cluster's address count.
  ClusterNaming(std::span<const ClusterId> cluster_of,
                std::span<const std::uint32_t> cluster_sizes,
                const TagStore& tags);

  /// Name of cluster `c`, or nullptr if no tag reached it.
  const ClusterName* name_of(ClusterId c) const noexcept;

  /// Every named cluster.
  const std::unordered_map<ClusterId, ClusterName>& names() const noexcept {
    return names_;
  }

  /// Number of clusters a given service name landed on (paper: Mt. Gox
  /// spread across 20 H1 clusters).
  std::size_t clusters_for_service(const std::string& service) const noexcept;

  /// Total addresses inside named clusters.
  std::uint64_t named_addresses() const noexcept { return named_addresses_; }

  /// named_addresses / hand-tagged addresses: the paper's ~1600×
  /// amplification measure.
  double amplification(std::size_t hand_tagged) const noexcept {
    return hand_tagged == 0
               ? 0.0
               : static_cast<double>(named_addresses_) /
                     static_cast<double>(hand_tagged);
  }

  /// Clusters whose tags disagree on service identity — the symptom of
  /// Heuristic-2 super-cluster collapse (§4.2).
  const std::vector<ClusterId>& contested() const noexcept {
    return contested_;
  }

 private:
  std::unordered_map<ClusterId, ClusterName> names_;
  std::unordered_map<std::string, std::size_t> service_cluster_count_;
  std::vector<ClusterId> contested_;
  std::uint64_t named_addresses_ = 0;
};

}  // namespace fist
