#include "tag/category.hpp"

#include <array>

namespace fist {

namespace {

constexpr std::array<std::string_view, kCategoryCount> kNames = {
    "mining",     "wallets", "exchanges", "fixed",  "vendors",
    "gambling",   "investment", "mix",    "misc",   "users",
};

}  // namespace

std::string_view category_name(Category c) noexcept {
  auto i = static_cast<std::size_t>(c);
  return i < kNames.size() ? kNames[i] : "?";
}

std::optional<Category> category_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNames.size(); ++i)
    if (kNames[i] == name) return static_cast<Category>(i);
  return std::nullopt;
}

Category category_at(std::size_t i) noexcept {
  return static_cast<Category>(i < kCategoryCount ? i : kCategoryCount - 1);
}

}  // namespace fist
