// category.hpp — service taxonomy.
//
// The paper groups Bitcoin services into the categories of its Table 1
// and tracks their balances in Figure 2; this enum is that taxonomy.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace fist {

/// Category of a Bitcoin service (or an ordinary user).
enum class Category : std::uint8_t {
  Mining,        ///< mining pools
  Wallet,        ///< hosted wallet services
  BankExchange,  ///< real-time trading exchanges that hold balances
  FixedExchange, ///< fixed-rate, one-shot exchanges
  Vendor,        ///< merchants (physical/digital goods)
  Gambling,      ///< dice games, poker, lotteries
  Investment,    ///< investment schemes (incl. Ponzis)
  Mix,           ///< mix/laundry services
  Misc,          ///< everything else service-like
  User,          ///< ordinary end users (unnamed population)
};

/// Display name ("exchanges", "mining", ... matching Figure 2's legend).
std::string_view category_name(Category c) noexcept;

/// Parses a category name (exact match on category_name output).
std::optional<Category> category_from_name(std::string_view name) noexcept;

/// Number of categories (for dense per-category arrays).
inline constexpr std::size_t kCategoryCount = 10;

/// All categories, for iteration.
Category category_at(std::size_t i) noexcept;

/// True for categories the paper treats as exchanges when asking "did
/// stolen coins reach an exchange?" (bank + fixed-rate).
constexpr bool is_exchange(Category c) noexcept {
  return c == Category::BankExchange || c == Category::FixedExchange;
}

}  // namespace fist
