#include "tag/feedio.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace fist {

namespace {

std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

// Splits one CSV line (handles quoted fields).
std::vector<std::string> split_csv(const std::string& line, int lineno) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (quoted)
    throw ParseError("tag feed line " + std::to_string(lineno) +
                     ": unterminated quote");
  fields.push_back(std::move(cur));
  return fields;
}

TagSource source_from_name(const std::string& name, int lineno) {
  if (name == "observed") return TagSource::Observed;
  if (name == "self-advertised") return TagSource::SelfAdvertised;
  if (name == "scraped") return TagSource::Scraped;
  throw ParseError("tag feed line " + std::to_string(lineno) +
                   ": unknown source '" + name + "'");
}

}  // namespace

void write_tag_feed(std::ostream& os, const std::vector<TagEntry>& feed) {
  os << "address,service,category,source\n";
  for (const TagEntry& e : feed) {
    os << e.address.encode() << ',' << escape(e.tag.service) << ','
       << category_name(e.tag.category) << ','
       << tag_source_name(e.tag.source) << '\n';
  }
}

std::vector<TagEntry> read_tag_feed(std::istream& is) {
  std::vector<TagEntry> feed;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (lineno == 1 && line.rfind("address,", 0) == 0) continue;  // header
    std::vector<std::string> fields = split_csv(line, lineno);
    if (fields.size() != 4)
      throw ParseError("tag feed line " + std::to_string(lineno) +
                       ": expected 4 fields, got " +
                       std::to_string(fields.size()));
    auto addr = Address::decode(fields[0]);
    if (!addr)
      throw ParseError("tag feed line " + std::to_string(lineno) +
                       ": bad address '" + fields[0] + "'");
    auto category = category_from_name(fields[2]);
    if (!category)
      throw ParseError("tag feed line " + std::to_string(lineno) +
                       ": unknown category '" + fields[2] + "'");
    feed.push_back(TagEntry{
        *addr, Tag{fields[1], *category,
                   source_from_name(fields[3], lineno)}});
  }
  return feed;
}

}  // namespace fist
