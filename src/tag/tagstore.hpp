// tagstore.hpp — ground-truth address labels ("tags").
//
// Section 3 of the paper labels addresses by transacting with services
// (high confidence), collecting self-advertised addresses, and scraping
// forums (lower confidence). TagStore holds those labels keyed by
// interned AddrId, with the source class retained so analyses can weight
// reliability.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/addrbook.hpp"
#include "tag/category.hpp"

namespace fist {

/// How a tag was obtained, in decreasing order of reliability.
enum class TagSource : std::uint8_t {
  Observed,        ///< we transacted with the service ourselves (§3.1)
  SelfAdvertised,  ///< the owner published the address (§3.2)
  Scraped,         ///< third-party forum/aggregator data (§3.2)
};

/// Printable source name.
std::string_view tag_source_name(TagSource s) noexcept;

/// One label: service identity + category + provenance.
struct Tag {
  std::string service;   ///< e.g. "Mt. Gox"
  Category category = Category::Misc;
  TagSource source = TagSource::Observed;

  bool operator==(const Tag&) const = default;
};

/// A feed entry: an address someone labeled (§3's raw material, before
/// interning against a chain view).
struct TagEntry {
  Address address;
  Tag tag;
};

/// Address → tag map with provenance accounting.
class TagStore {
 public:
  /// Adds a tag for `addr`. A second tag for the same address is kept
  /// only if it has a strictly more reliable source; conflicting
  /// service names at equal reliability are recorded as conflicts.
  void add(AddrId addr, Tag tag);

  /// The tag for `addr`, if any.
  const Tag* find(AddrId addr) const noexcept;

  /// All tagged addresses.
  const std::unordered_map<AddrId, Tag>& all() const noexcept {
    return tags_;
  }

  std::size_t size() const noexcept { return tags_.size(); }

  /// Tags whose (addr, service) pairs disagreed at equal reliability.
  const std::vector<std::pair<AddrId, Tag>>& conflicts() const noexcept {
    return conflicts_;
  }

  /// Number of tags from a given source.
  std::size_t count_by_source(TagSource s) const noexcept;

 private:
  std::unordered_map<AddrId, Tag> tags_;
  std::vector<std::pair<AddrId, Tag>> conflicts_;
};

}  // namespace fist
