// opcodes.hpp — the Bitcoin script opcodes fistful understands.
//
// Only the subset needed to build and classify 2009–2013-era standard
// scripts is enumerated; unknown opcodes still round-trip through the
// parser as raw values.
#pragma once

#include <cstdint>
#include <string>

namespace fist {

/// Script opcodes (values match the Bitcoin protocol).
enum class Opcode : std::uint8_t {
  // Push operations. Values 0x01..0x4b push that many literal bytes.
  OP_0 = 0x00,
  OP_PUSHDATA1 = 0x4c,
  OP_PUSHDATA2 = 0x4d,
  OP_PUSHDATA4 = 0x4e,
  OP_1NEGATE = 0x4f,
  OP_1 = 0x51,
  OP_2 = 0x52,
  OP_3 = 0x53,
  OP_4 = 0x54,
  OP_5 = 0x55,
  OP_6 = 0x56,
  OP_7 = 0x57,
  OP_8 = 0x58,
  OP_9 = 0x59,
  OP_10 = 0x5a,
  OP_11 = 0x5b,
  OP_12 = 0x5c,
  OP_13 = 0x5d,
  OP_14 = 0x5e,
  OP_15 = 0x5f,
  OP_16 = 0x60,

  // Flow / stack / compare.
  OP_NOP = 0x61,
  OP_RETURN = 0x6a,
  OP_DUP = 0x76,
  OP_EQUAL = 0x87,
  OP_EQUALVERIFY = 0x88,

  // Crypto.
  OP_RIPEMD160 = 0xa6,
  OP_SHA256 = 0xa8,
  OP_HASH160 = 0xa9,
  OP_HASH256 = 0xaa,
  OP_CHECKSIG = 0xac,
  OP_CHECKSIGVERIFY = 0xad,
  OP_CHECKMULTISIG = 0xae,
  OP_CHECKMULTISIGVERIFY = 0xaf,

  OP_INVALIDOPCODE = 0xff,
};

/// Human-readable opcode name ("OP_DUP"), or "OP_UNKNOWN(0xXX)".
std::string opcode_name(Opcode op);

/// For OP_1..OP_16 returns 1..16; OP_0 returns 0; otherwise -1.
constexpr int small_int_value(Opcode op) noexcept {
  auto v = static_cast<std::uint8_t>(op);
  if (op == Opcode::OP_0) return 0;
  if (v >= 0x51 && v <= 0x60) return v - 0x50;
  return -1;
}

/// The opcode encoding a small integer 0..16.
constexpr Opcode small_int_opcode(int n) noexcept {
  if (n == 0) return Opcode::OP_0;
  return static_cast<Opcode>(0x50 + n);
}

}  // namespace fist
