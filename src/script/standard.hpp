// standard.hpp — standard script templates and destination extraction.
//
// This is the layer the forensics pipeline uses to turn a scriptPubKey
// into an address (or refuse to): P2PK, P2PKH, P2SH, bare multisig and
// OP_RETURN, the repertoire in use during 2009–2013.
#pragma once

#include <optional>
#include <vector>

#include "crypto/hash.hpp"
#include "encoding/address.hpp"
#include "script/script.hpp"

namespace fist {

/// Recognized output-script templates.
enum class ScriptType {
  NonStandard,
  P2PK,       ///< <pubkey> OP_CHECKSIG
  P2PKH,      ///< OP_DUP OP_HASH160 <20B> OP_EQUALVERIFY OP_CHECKSIG
  P2SH,       ///< OP_HASH160 <20B> OP_EQUAL
  Multisig,   ///< OP_m <pk>... OP_n OP_CHECKMULTISIG
  NullData,   ///< OP_RETURN <data>  (provably unspendable)
};

/// Classification result: the template plus extracted payloads.
struct Classified {
  ScriptType type = ScriptType::NonStandard;
  std::vector<Bytes> pubkeys;  ///< P2PK/Multisig: raw SEC1 pubkeys
  Hash160 hash;                ///< P2PKH/P2SH: payload hash
  int required = 0;            ///< Multisig: m of n
};

/// Classifies an output script against the standard templates.
Classified classify(const Script& script) noexcept;

/// Extracts the canonical destination address, if the script has one.
/// P2PK yields the HASH160 of the embedded pubkey (what explorers
/// display); Multisig/NullData/NonStandard yield nullopt.
std::optional<Address> extract_address(const Script& script) noexcept;

/// Destination of an already-classified script — extract_address is
/// classify + address_of; callers that also need the ScriptType (the
/// chain-view scan counts script classes) classify once and use this.
std::optional<Address> address_of(const Classified& c) noexcept;

/// Builds OP_DUP OP_HASH160 <h> OP_EQUALVERIFY OP_CHECKSIG.
Script make_p2pkh(const Hash160& h);

/// Builds <pubkey> OP_CHECKSIG.
Script make_p2pk(ByteView pubkey);

/// Builds OP_HASH160 <h> OP_EQUAL.
Script make_p2sh(const Hash160& script_hash);

/// Builds OP_m <pubkeys...> OP_n OP_CHECKMULTISIG. Requires
/// 1 <= required <= pubkeys.size() <= 16.
Script make_multisig(int required, const std::vector<Bytes>& pubkeys);

/// Builds OP_RETURN <data> (data <= 80 bytes by convention).
Script make_nulldata(ByteView data);

/// Builds the scriptSig spending a P2PKH output:
/// <sig ‖ hashtype> <pubkey>.
Script make_p2pkh_scriptsig(ByteView signature_with_hashtype,
                            ByteView pubkey);

/// Builds the output script paying to `addr` (P2PKH or P2SH).
Script make_script_for(const Address& addr);

/// Printable name of a ScriptType ("p2pkh", ...).
const char* script_type_name(ScriptType t) noexcept;

}  // namespace fist
