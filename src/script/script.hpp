// script.hpp — Bitcoin script container, builder and tokenizer.
//
// A Script is the raw byte program carried in transaction outputs
// (scriptPubKey) and inputs (scriptSig). This module builds scripts
// op-by-op and tokenizes them back into (opcode, push-payload) pairs;
// standard.hpp layers template recognition on top.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "script/opcodes.hpp"
#include "util/bytes.hpp"

namespace fist {

/// One tokenized script element: an opcode, plus its payload when the
/// opcode is a data push.
struct ScriptOp {
  Opcode op = Opcode::OP_INVALIDOPCODE;
  Bytes push;  ///< non-empty only for data pushes

  /// True if this element pushes data (including OP_0's empty push).
  bool is_push() const noexcept {
    auto v = static_cast<std::uint8_t>(op);
    return v <= static_cast<std::uint8_t>(Opcode::OP_PUSHDATA4);
  }

  bool operator==(const ScriptOp&) const = default;
};

/// A script program. Wraps raw bytes; append-only builder interface.
class Script {
 public:
  Script() = default;
  explicit Script(Bytes raw) noexcept : raw_(std::move(raw)) {}

  /// Appends a bare (non-push) opcode.
  Script& op(Opcode opcode);

  /// Appends a minimal data push of `data` (direct push, PUSHDATA1/2/4
  /// as needed; empty data becomes OP_0).
  Script& push(ByteView data);

  /// Appends a small-integer push (0..16) using OP_0/OP_1..OP_16.
  Script& push_int(int n);

  /// Tokenizes the program. Throws ParseError on a truncated push.
  std::vector<ScriptOp> ops() const;

  /// Tokenizes without throwing; returns nullopt on malformed scripts
  /// (which do occur in real chains and must not kill a scan).
  std::optional<std::vector<ScriptOp>> ops_checked() const noexcept;

  /// Disassembles to "OP_DUP OP_HASH160 89abcd... OP_EQUALVERIFY ..."
  /// (best effort on malformed scripts).
  std::string to_asm() const;

  const Bytes& raw() const noexcept { return raw_; }
  ByteView view() const noexcept { return raw_; }
  std::size_t size() const noexcept { return raw_.size(); }
  bool empty() const noexcept { return raw_.empty(); }

  bool operator==(const Script&) const = default;

 private:
  Bytes raw_;
};

}  // namespace fist
