#include "script/standard.hpp"

#include "util/error.hpp"

namespace fist {

namespace {

// True iff the payload could be a SEC1 public key (33 compressed or
// 65 uncompressed bytes with the right prefix). We do not insist the
// point is on the curve — real chains carry a few invalid ones, and the
// forensics layer must classify them the way period software did.
bool plausible_pubkey(const Bytes& b) noexcept {
  if (b.size() == 33) return b[0] == 0x02 || b[0] == 0x03;
  if (b.size() == 65) return b[0] == 0x04;
  return false;
}

}  // namespace

Classified classify(const Script& script) noexcept {
  Classified out;
  auto parsed = script.ops_checked();
  if (!parsed || parsed->empty()) return out;
  const std::vector<ScriptOp>& ops = *parsed;

  // OP_RETURN ...
  if (ops[0].op == Opcode::OP_RETURN) {
    out.type = ScriptType::NullData;
    return out;
  }

  // <pubkey> OP_CHECKSIG
  if (ops.size() == 2 && ops[0].is_push() && plausible_pubkey(ops[0].push) &&
      ops[1].op == Opcode::OP_CHECKSIG) {
    out.type = ScriptType::P2PK;
    out.pubkeys.push_back(ops[0].push);
    return out;
  }

  // OP_DUP OP_HASH160 <20> OP_EQUALVERIFY OP_CHECKSIG
  if (ops.size() == 5 && ops[0].op == Opcode::OP_DUP &&
      ops[1].op == Opcode::OP_HASH160 && ops[2].is_push() &&
      ops[2].push.size() == 20 && ops[3].op == Opcode::OP_EQUALVERIFY &&
      ops[4].op == Opcode::OP_CHECKSIG) {
    out.type = ScriptType::P2PKH;
    out.hash = Hash160::from_bytes(ops[2].push);
    return out;
  }

  // OP_HASH160 <20> OP_EQUAL
  if (ops.size() == 3 && ops[0].op == Opcode::OP_HASH160 &&
      ops[1].is_push() && ops[1].push.size() == 20 &&
      ops[2].op == Opcode::OP_EQUAL) {
    out.type = ScriptType::P2SH;
    out.hash = Hash160::from_bytes(ops[1].push);
    return out;
  }

  // OP_m <pk>... OP_n OP_CHECKMULTISIG
  if (ops.size() >= 4 && ops.back().op == Opcode::OP_CHECKMULTISIG) {
    int m = small_int_value(ops[0].op);
    int n = small_int_value(ops[ops.size() - 2].op);
    if (m >= 1 && n >= m && n <= 16 &&
        ops.size() == static_cast<std::size_t>(n) + 3) {
      std::vector<Bytes> keys;
      bool ok = true;
      for (std::size_t i = 1; i + 2 < ops.size(); ++i) {
        if (!ops[i].is_push() || !plausible_pubkey(ops[i].push)) {
          ok = false;
          break;
        }
        keys.push_back(ops[i].push);
      }
      if (ok) {
        out.type = ScriptType::Multisig;
        out.pubkeys = std::move(keys);
        out.required = m;
        return out;
      }
    }
  }

  return out;
}

std::optional<Address> extract_address(const Script& script) noexcept {
  return address_of(classify(script));
}

std::optional<Address> address_of(const Classified& c) noexcept {
  switch (c.type) {
    case ScriptType::P2PKH:
      return Address(AddrType::P2PKH, c.hash);
    case ScriptType::P2SH:
      return Address(AddrType::P2SH, c.hash);
    case ScriptType::P2PK:
      return Address(AddrType::P2PKH, hash160(c.pubkeys[0]));
    default:
      return std::nullopt;
  }
}

Script make_p2pkh(const Hash160& h) {
  Script s;
  s.op(Opcode::OP_DUP).op(Opcode::OP_HASH160).push(h.view());
  s.op(Opcode::OP_EQUALVERIFY).op(Opcode::OP_CHECKSIG);
  return s;
}

Script make_p2pk(ByteView pubkey) {
  Script s;
  s.push(pubkey).op(Opcode::OP_CHECKSIG);
  return s;
}

Script make_p2sh(const Hash160& script_hash) {
  Script s;
  s.op(Opcode::OP_HASH160).push(script_hash.view()).op(Opcode::OP_EQUAL);
  return s;
}

Script make_multisig(int required, const std::vector<Bytes>& pubkeys) {
  if (required < 1 || pubkeys.empty() || pubkeys.size() > 16 ||
      static_cast<std::size_t>(required) > pubkeys.size())
    throw UsageError("make_multisig: bad m-of-n");
  Script s;
  s.push_int(required);
  for (const Bytes& pk : pubkeys) s.push(pk);
  s.push_int(static_cast<int>(pubkeys.size()));
  s.op(Opcode::OP_CHECKMULTISIG);
  return s;
}

Script make_nulldata(ByteView data) {
  Script s;
  s.op(Opcode::OP_RETURN);
  if (!data.empty()) s.push(data);
  return s;
}

Script make_p2pkh_scriptsig(ByteView signature_with_hashtype,
                            ByteView pubkey) {
  Script s;
  s.push(signature_with_hashtype).push(pubkey);
  return s;
}

Script make_script_for(const Address& addr) {
  switch (addr.type()) {
    case AddrType::P2PKH: return make_p2pkh(addr.payload());
    case AddrType::P2SH: return make_p2sh(addr.payload());
  }
  throw UsageError("make_script_for: unknown address type");
}

const char* script_type_name(ScriptType t) noexcept {
  switch (t) {
    case ScriptType::NonStandard: return "nonstandard";
    case ScriptType::P2PK: return "p2pk";
    case ScriptType::P2PKH: return "p2pkh";
    case ScriptType::P2SH: return "p2sh";
    case ScriptType::Multisig: return "multisig";
    case ScriptType::NullData: return "nulldata";
  }
  return "?";
}

}  // namespace fist
