#include "script/script.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/hex.hpp"

namespace fist {

std::string opcode_name(Opcode op) {
  switch (op) {
    case Opcode::OP_0: return "OP_0";
    case Opcode::OP_PUSHDATA1: return "OP_PUSHDATA1";
    case Opcode::OP_PUSHDATA2: return "OP_PUSHDATA2";
    case Opcode::OP_PUSHDATA4: return "OP_PUSHDATA4";
    case Opcode::OP_1NEGATE: return "OP_1NEGATE";
    case Opcode::OP_NOP: return "OP_NOP";
    case Opcode::OP_RETURN: return "OP_RETURN";
    case Opcode::OP_DUP: return "OP_DUP";
    case Opcode::OP_EQUAL: return "OP_EQUAL";
    case Opcode::OP_EQUALVERIFY: return "OP_EQUALVERIFY";
    case Opcode::OP_RIPEMD160: return "OP_RIPEMD160";
    case Opcode::OP_SHA256: return "OP_SHA256";
    case Opcode::OP_HASH160: return "OP_HASH160";
    case Opcode::OP_HASH256: return "OP_HASH256";
    case Opcode::OP_CHECKSIG: return "OP_CHECKSIG";
    case Opcode::OP_CHECKSIGVERIFY: return "OP_CHECKSIGVERIFY";
    case Opcode::OP_CHECKMULTISIG: return "OP_CHECKMULTISIG";
    case Opcode::OP_CHECKMULTISIGVERIFY: return "OP_CHECKMULTISIGVERIFY";
    default: break;
  }
  int n = small_int_value(op);
  if (n >= 1) return "OP_" + std::to_string(n);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "OP_UNKNOWN(0x%02x)",
                static_cast<unsigned>(op));
  return buf;
}

Script& Script::op(Opcode opcode) {
  raw_.push_back(static_cast<std::uint8_t>(opcode));
  return *this;
}

Script& Script::push(ByteView data) {
  if (data.empty()) {
    raw_.push_back(static_cast<std::uint8_t>(Opcode::OP_0));
    return *this;
  }
  std::size_t n = data.size();
  if (n <= 0x4b) {
    raw_.push_back(static_cast<std::uint8_t>(n));
  } else if (n <= 0xff) {
    raw_.push_back(static_cast<std::uint8_t>(Opcode::OP_PUSHDATA1));
    raw_.push_back(static_cast<std::uint8_t>(n));
  } else if (n <= 0xffff) {
    raw_.push_back(static_cast<std::uint8_t>(Opcode::OP_PUSHDATA2));
    raw_.push_back(static_cast<std::uint8_t>(n));
    raw_.push_back(static_cast<std::uint8_t>(n >> 8));
  } else {
    raw_.push_back(static_cast<std::uint8_t>(Opcode::OP_PUSHDATA4));
    for (int i = 0; i < 4; ++i)
      raw_.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
  }
  append(raw_, data);
  return *this;
}

Script& Script::push_int(int n) {
  if (n < 0 || n > 16) throw UsageError("Script::push_int: out of range");
  raw_.push_back(static_cast<std::uint8_t>(small_int_opcode(n)));
  return *this;
}

std::vector<ScriptOp> Script::ops() const {
  std::vector<ScriptOp> out;
  std::size_t pos = 0;
  while (pos < raw_.size()) {
    std::uint8_t v = raw_[pos++];
    ScriptOp element;
    element.op = static_cast<Opcode>(v);
    std::size_t len = 0;
    if (v >= 1 && v <= 0x4b) {
      len = v;
    } else if (v == static_cast<std::uint8_t>(Opcode::OP_PUSHDATA1)) {
      if (pos + 1 > raw_.size()) throw ParseError("script: truncated push");
      len = raw_[pos];
      pos += 1;
    } else if (v == static_cast<std::uint8_t>(Opcode::OP_PUSHDATA2)) {
      if (pos + 2 > raw_.size()) throw ParseError("script: truncated push");
      len = raw_[pos] | (static_cast<std::size_t>(raw_[pos + 1]) << 8);
      pos += 2;
    } else if (v == static_cast<std::uint8_t>(Opcode::OP_PUSHDATA4)) {
      if (pos + 4 > raw_.size()) throw ParseError("script: truncated push");
      len = 0;
      for (int i = 3; i >= 0; --i)
        len = (len << 8) | raw_[pos + static_cast<std::size_t>(i)];
      pos += 4;
    }
    if (len > 0) {
      if (pos + len > raw_.size()) throw ParseError("script: truncated push");
      element.push.assign(raw_.begin() + static_cast<std::ptrdiff_t>(pos),
                          raw_.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    }
    out.push_back(std::move(element));
  }
  return out;
}

std::optional<std::vector<ScriptOp>> Script::ops_checked() const noexcept {
  try {
    return ops();
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

std::string Script::to_asm() const {
  auto parsed = ops_checked();
  if (!parsed) return "<malformed script " + to_hex(raw_) + ">";
  std::string out;
  for (const ScriptOp& element : *parsed) {
    if (!out.empty()) out += ' ';
    if (element.is_push() && element.op != Opcode::OP_0)
      out += to_hex(element.push);
    else
      out += opcode_name(element.op);
  }
  return out;
}

}  // namespace fist
