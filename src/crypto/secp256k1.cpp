#include "crypto/secp256k1.hpp"

#include <mutex>
#include <vector>

namespace fist::secp {

namespace {

// p = 2^256 - 2^32 - 977
const U256 kP = U256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const U256 kPC = U256(0x00000001000003d1ULL);  // 2^32 + 977

// n = group order
const U256 kN = U256::from_hex(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
// c_n = 2^256 - n
const U256 kNC = U256::from_hex("14551231950b75fc4402da1732fc9bebf");

const U256 kGx = U256::from_hex(
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const U256 kGy = U256::from_hex(
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

// Adds the 512-bit quantity hi*c into (lo, producing a wider value), used
// by ModArith::reduce. Result as U512 with at most ~390 significant bits.
U512 fold(const U256& lo, const U256& hi, const U256& c) noexcept {
  U512 out;
  // out = lo
  for (std::size_t i = 0; i < 4; ++i) out.w[i] = lo.w[i];
  // out += hi * c   (schoolbook, 4x4 limbs into 8)
  for (std::size_t i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(hi.w[i]) * c.w[j] + out.w[i + j] +
          carry;
      out.w[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    std::size_t k = i + 4;
    while (carry != 0 && k < 8) {
      unsigned __int128 cur = static_cast<unsigned __int128>(out.w[k]) + carry;
      out.w[k] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  return out;
}

}  // namespace

U256 ModArith::reduce(const U512& x) const noexcept {
  U512 cur = x;
  // Fold the high 256 bits down until they vanish: hi*2^256 ≡ hi*c (mod m).
  for (int iter = 0; iter < 6; ++iter) {
    U256 lo{cur.w[0], cur.w[1], cur.w[2], cur.w[3]};
    U256 hi{cur.w[4], cur.w[5], cur.w[6], cur.w[7]};
    if (hi.is_zero()) return normalize(lo);
    cur = fold(lo, hi, c_);
  }
  // Unreachable for c < 2^130: each fold shrinks the high half fast.
  U256 lo{cur.w[0], cur.w[1], cur.w[2], cur.w[3]};
  return normalize(lo);
}

U256 ModArith::normalize(const U256& a) const noexcept {
  U256 r = a;
  while (cmp(r, m_) >= 0) {
    std::uint64_t borrow;
    r = fist::sub(r, m_, borrow);
  }
  return r;
}

U256 ModArith::add(const U256& a, const U256& b) const noexcept {
  std::uint64_t carry;
  U256 r = fist::add(a, b, carry);
  if (carry || cmp(r, m_) >= 0) {
    std::uint64_t borrow;
    r = fist::sub(r, m_, borrow);
  }
  return r;
}

U256 ModArith::sub(const U256& a, const U256& b) const noexcept {
  std::uint64_t borrow;
  U256 r = fist::sub(a, b, borrow);
  if (borrow) {
    std::uint64_t carry;
    r = fist::add(r, m_, carry);
  }
  return r;
}

U256 ModArith::mul(const U256& a, const U256& b) const noexcept {
  return reduce(mul_wide(a, b));
}

U256 ModArith::pow(const U256& a, const U256& e) const noexcept {
  U256 result(1);
  U256 base = a;
  unsigned bits = e.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (e.bit(i)) result = mul(result, base);
    base = sqr(base);
  }
  return result;
}

U256 ModArith::inv(const U256& a) const noexcept {
  // a^(m-2) mod m, valid for prime m.
  std::uint64_t borrow;
  U256 e = fist::sub(m_, U256(2), borrow);
  return pow(a, e);
}

U256 ModArith::neg(const U256& a) const noexcept {
  if (a.is_zero()) return a;
  std::uint64_t borrow;
  return fist::sub(m_, normalize(a), borrow);
}

const U256& field_p() noexcept { return kP; }
const U256& order_n() noexcept { return kN; }

const ModArith& fp() noexcept {
  static const ModArith arith(kP, kPC);
  return arith;
}

const ModArith& fn() noexcept {
  static const ModArith arith(kN, kNC);
  return arith;
}

const Affine& generator() noexcept {
  static const Affine g{kGx, kGy, false};
  return g;
}

Jacobian to_jacobian(const Affine& a) noexcept {
  if (a.infinity) return Jacobian{U256(), U256(), U256()};
  return Jacobian{a.x, a.y, U256(1)};
}

Affine to_affine(const Jacobian& p) noexcept {
  if (p.is_infinity()) return Affine{};
  const ModArith& f = fp();
  U256 zinv = f.inv(p.z);
  U256 zinv2 = f.sqr(zinv);
  U256 zinv3 = f.mul(zinv2, zinv);
  return Affine{f.mul(p.x, zinv2), f.mul(p.y, zinv3), false};
}

Jacobian dbl(const Jacobian& p) noexcept {
  if (p.is_infinity()) return p;
  const ModArith& f = fp();
  if (p.y.is_zero()) return Jacobian{U256(), U256(), U256()};
  U256 y2 = f.sqr(p.y);
  U256 s = f.mul(p.x, y2);
  s = f.add(s, s);
  s = f.add(s, s);  // s = 4*x*y^2
  U256 x2 = f.sqr(p.x);
  U256 m = f.add(f.add(x2, x2), x2);  // m = 3*x^2 (a = 0)
  U256 x3 = f.sub(f.sqr(m), f.add(s, s));
  U256 y4 = f.sqr(y2);
  U256 y4_8 = y4;
  for (int i = 0; i < 3; ++i) y4_8 = f.add(y4_8, y4_8);  // 8*y^4
  U256 y3 = f.sub(f.mul(m, f.sub(s, x3)), y4_8);
  U256 z3 = f.mul(p.y, p.z);
  z3 = f.add(z3, z3);
  return Jacobian{x3, y3, z3};
}

Jacobian add(const Jacobian& p, const Jacobian& q) noexcept {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  const ModArith& f = fp();
  U256 z1z1 = f.sqr(p.z);
  U256 z2z2 = f.sqr(q.z);
  U256 u1 = f.mul(p.x, z2z2);
  U256 u2 = f.mul(q.x, z1z1);
  U256 s1 = f.mul(p.y, f.mul(z2z2, q.z));
  U256 s2 = f.mul(q.y, f.mul(z1z1, p.z));
  if (u1 == u2) {
    if (!(s1 == s2)) return Jacobian{U256(), U256(), U256()};
    return dbl(p);
  }
  U256 h = f.sub(u2, u1);
  U256 r = f.sub(s2, s1);
  U256 h2 = f.sqr(h);
  U256 h3 = f.mul(h2, h);
  U256 u1h2 = f.mul(u1, h2);
  U256 x3 = f.sub(f.sub(f.sqr(r), h3), f.add(u1h2, u1h2));
  U256 y3 = f.sub(f.mul(r, f.sub(u1h2, x3)), f.mul(s1, h3));
  U256 z3 = f.mul(f.mul(p.z, q.z), h);
  return Jacobian{x3, y3, z3};
}

Jacobian add_affine(const Jacobian& p, const Affine& q) noexcept {
  if (q.infinity) return p;
  return add(p, to_jacobian(q));
}

Jacobian mul(const U256& k, const Affine& point) noexcept {
  Jacobian acc{U256(), U256(), U256()};
  if (point.infinity || k.is_zero()) return acc;
  Jacobian base = to_jacobian(point);
  unsigned bits = k.bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    acc = dbl(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = add(acc, base);
  }
  return acc;
}

namespace {

// Fixed-base window table: kWindowTable[i][j] = j * 16^i * G, affine.
// 64 windows of 4 bits cover a full 256-bit scalar.
struct GeneratorTable {
  std::array<std::array<Affine, 16>, 64> win;

  GeneratorTable() {
    Jacobian base = to_jacobian(generator());  // 16^i * G as i advances
    for (int i = 0; i < 64; ++i) {
      Jacobian acc{U256(), U256(), U256()};  // infinity
      for (int j = 0; j < 16; ++j) {
        win[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            to_affine(acc);
        acc = add(acc, base);
      }
      // base *= 16
      for (int d = 0; d < 4; ++d) base = dbl(base);
    }
  }
};

const GeneratorTable& gen_table() {
  static const GeneratorTable table;
  return table;
}

}  // namespace

Jacobian mul_generator(const U256& k) noexcept {
  const GeneratorTable& t = gen_table();
  Jacobian acc{U256(), U256(), U256()};
  for (unsigned i = 0; i < 64; ++i) {
    unsigned nib = static_cast<unsigned>(
        (k.w[i >> 4] >> ((i & 15) * 4)) & 0xf);
    if (nib != 0) acc = add_affine(acc, t.win[i][nib]);
  }
  return acc;
}

bool on_curve(const Affine& a) noexcept {
  if (a.infinity) return false;
  const ModArith& f = fp();
  U256 lhs = f.sqr(a.y);
  U256 rhs = f.add(f.mul(f.sqr(a.x), a.x), U256(7));
  return lhs == rhs;
}

std::optional<Affine> lift_x(const U256& x, bool odd_y) noexcept {
  const ModArith& f = fp();
  if (cmp(x, field_p()) >= 0) return std::nullopt;
  U256 rhs = f.add(f.mul(f.sqr(x), x), U256(7));
  // p ≡ 3 (mod 4): sqrt(a) = a^((p+1)/4)
  std::uint64_t carry;
  U256 e = fist::add(field_p(), U256(1), carry);
  (void)carry;  // p + 1 overflows into bit 256? no: p < 2^256 - 1
  e = shr(e, 2);
  U256 y = f.pow(rhs, e);
  if (!(f.sqr(y) == rhs)) return std::nullopt;  // x not on curve
  bool is_odd = y.bit(0);
  if (is_odd != odd_y) y = f.neg(y);
  return Affine{x, y, false};
}

}  // namespace fist::secp
