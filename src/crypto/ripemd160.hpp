// ripemd160.hpp — RIPEMD-160 (Dobbertin, Bosselaers, Preneel 1996),
// implemented from scratch.
//
// Bitcoin addresses are HASH160(pubkey) = RIPEMD160(SHA256(pubkey));
// this module provides the RIPEMD half of that pipeline.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace fist {

/// Streaming RIPEMD-160 hasher (same interface shape as Sha256).
class Ripemd160 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Ripemd160() noexcept { reset(); }

  /// Absorbs `data` into the hash state.
  Ripemd160& write(ByteView data) noexcept;

  /// Finalizes and returns the digest.
  Digest finish() noexcept;

  /// Returns the hasher to its initial state.
  void reset() noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, 64> buf_;
  std::uint64_t total_ = 0;
  std::size_t buflen_ = 0;
};

/// One-shot RIPEMD-160.
Ripemd160::Digest ripemd160(ByteView data) noexcept;

}  // namespace fist
