#include "crypto/ripemd160.hpp"

#include <bit>
#include <cstring>

namespace fist {

namespace {

// Message word selection order, left line.
constexpr std::uint8_t kR[80] = {
    0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15,  //
    7,  4,  13, 1,  10, 6,  15, 3,  12, 0,  9,  5,  2,  14, 11, 8,   //
    3,  10, 14, 4,  9,  15, 8,  1,  2,  7,  0,  6,  13, 11, 5,  12,  //
    1,  9,  11, 10, 0,  8,  12, 4,  13, 3,  7,  15, 14, 5,  6,  2,   //
    4,  0,  5,  9,  7,  12, 2,  10, 14, 1,  3,  8,  11, 6,  15, 13,
};

// Message word selection order, right line.
constexpr std::uint8_t kRp[80] = {
    5,  14, 7,  0,  9,  2,  11, 4,  13, 6,  15, 8,  1,  10, 3,  12,  //
    6,  11, 3,  7,  0,  13, 5,  10, 14, 15, 8,  12, 4,  9,  1,  2,   //
    15, 5,  1,  3,  7,  14, 6,  9,  11, 8,  12, 2,  10, 0,  4,  13,  //
    8,  6,  4,  1,  3,  11, 15, 0,  5,  12, 2,  13, 9,  7,  10, 14,  //
    12, 15, 10, 4,  1,  5,  8,  7,  6,  2,  13, 14, 0,  3,  9,  11,
};

// Rotation amounts, left line.
constexpr std::uint8_t kS[80] = {
    11, 14, 15, 12, 5,  8,  7,  9,  11, 13, 14, 15, 6,  7,  9,  8,   //
    7,  6,  8,  13, 11, 9,  7,  15, 7,  12, 15, 9,  11, 7,  13, 12,  //
    11, 13, 6,  7,  14, 9,  13, 15, 14, 8,  13, 6,  5,  12, 7,  5,   //
    11, 12, 14, 15, 14, 15, 9,  8,  9,  14, 5,  6,  8,  6,  5,  12,  //
    9,  15, 5,  11, 6,  8,  13, 12, 5,  12, 13, 14, 11, 8,  5,  6,
};

// Rotation amounts, right line.
constexpr std::uint8_t kSp[80] = {
    8,  9,  9,  11, 13, 15, 15, 5,  7,  7,  8,  11, 14, 14, 12, 6,   //
    9,  13, 15, 7,  12, 8,  9,  11, 7,  7,  12, 7,  6,  15, 13, 11,  //
    9,  7,  15, 11, 8,  6,  6,  14, 12, 13, 5,  14, 13, 13, 7,  5,   //
    15, 5,  8,  11, 14, 14, 6,  14, 6,  9,  12, 9,  12, 5,  15, 8,   //
    8,  5,  12, 9,  12, 5,  14, 6,  8,  13, 6,  5,  15, 13, 11, 11,
};

constexpr std::uint32_t kKLeft[5] = {0x00000000, 0x5a827999, 0x6ed9eba1,
                                     0x8f1bbcdc, 0xa953fd4e};
constexpr std::uint32_t kKRight[5] = {0x50a28be6, 0x5c4dd124, 0x6d703ef3,
                                      0x7a6d76e9, 0x00000000};

inline std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return std::rotl(x, n);
}

// Round functions f1..f5.
inline std::uint32_t f(int round, std::uint32_t x, std::uint32_t y,
                       std::uint32_t z) noexcept {
  switch (round) {
    case 0: return x ^ y ^ z;
    case 1: return (x & y) | (~x & z);
    case 2: return (x | ~y) ^ z;
    case 3: return (x & z) | (y & ~z);
    default: return x ^ (y | ~z);
  }
}

inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

void Ripemd160::reset() noexcept {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  total_ = 0;
  buflen_ = 0;
}

void Ripemd160::compress(const std::uint8_t* block) noexcept {
  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = load_le32(block + 4 * i);

  std::uint32_t al = state_[0], bl = state_[1], cl = state_[2],
                dl = state_[3], el = state_[4];
  std::uint32_t ar = al, br = bl, cr = cl, dr = dl, er = el;

  for (int j = 0; j < 80; ++j) {
    int round = j / 16;
    std::uint32_t t = rotl(al + f(round, bl, cl, dl) + x[kR[j]] +
                               kKLeft[round],
                           kS[j]) +
                      el;
    al = el;
    el = dl;
    dl = rotl(cl, 10);
    cl = bl;
    bl = t;

    t = rotl(ar + f(4 - round, br, cr, dr) + x[kRp[j]] + kKRight[round],
             kSp[j]) +
        er;
    ar = er;
    er = dr;
    dr = rotl(cr, 10);
    cr = br;
    br = t;
  }

  std::uint32_t t = state_[1] + cl + dr;
  state_[1] = state_[2] + dl + er;
  state_[2] = state_[3] + el + ar;
  state_[3] = state_[4] + al + br;
  state_[4] = state_[0] + bl + cr;
  state_[0] = t;
}

Ripemd160& Ripemd160::write(ByteView data) noexcept {
  total_ += data.size();
  std::size_t off = 0;
  if (buflen_ > 0) {
    std::size_t take = std::min(data.size(), buf_.size() - buflen_);
    std::memcpy(buf_.data() + buflen_, data.data(), take);
    buflen_ += take;
    off += take;
    if (buflen_ == buf_.size()) {
      compress(buf_.data());
      buflen_ = 0;
    }
  }
  while (data.size() - off >= 64) {
    compress(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buflen_ = data.size() - off;
  }
  return *this;
}

Ripemd160::Digest Ripemd160::finish() noexcept {
  std::uint64_t bitlen = total_ * 8;
  std::uint8_t pad[72];
  std::size_t padlen = 64 - ((total_ + 8) % 64);
  if (padlen == 0) padlen = 64;
  std::memset(pad, 0, sizeof(pad));
  pad[0] = 0x80;
  // RIPEMD-160 appends the bit length little-endian (unlike SHA-256).
  for (int i = 0; i < 8; ++i)
    pad[padlen + i] = static_cast<std::uint8_t>(bitlen >> (8 * i));
  write(ByteView(pad, padlen + 8));

  Digest out;
  for (int i = 0; i < 5; ++i) store_le32(out.data() + 4 * i, state_[i]);
  return out;
}

Ripemd160::Digest ripemd160(ByteView data) noexcept {
  Ripemd160 h;
  h.write(data);
  return h.finish();
}

}  // namespace fist
