// sha256.hpp — SHA-256 (FIPS 180-4), implemented from scratch.
//
// Provides both a streaming hasher (for large inputs such as block
// files) and one-shot helpers. This is the hash underlying txids, block
// hashes, proof-of-work and Base58Check checksums.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace fist {

/// Streaming SHA-256 hasher.
///
/// write() may be called any number of times; finish() closes the
/// stream. A finished hasher can be reset() and reused.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() noexcept { reset(); }

  /// Absorbs `data` into the hash state.
  Sha256& write(ByteView data) noexcept;

  /// Finalizes and returns the digest. The hasher must be reset()
  /// before further use.
  Digest finish() noexcept;

  /// Returns the hasher to its initial state.
  void reset() noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buf_;
  std::uint64_t total_ = 0;  // total bytes absorbed
  std::size_t buflen_ = 0;
};

/// One-shot SHA-256.
Sha256::Digest sha256(ByteView data) noexcept;

/// Double SHA-256 (Bitcoin's standard hash): SHA256(SHA256(data)).
Sha256::Digest sha256d(ByteView data) noexcept;

}  // namespace fist
