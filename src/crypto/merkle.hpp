// merkle.hpp — Bitcoin-style Merkle trees.
//
// Block headers commit to their transaction set through a Merkle root;
// this module computes roots and inclusion proofs using Bitcoin's exact
// rules (double SHA-256, odd nodes paired with themselves).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash.hpp"

namespace fist {

/// Computes the Merkle root of `leaves` (typically txids, in block
/// order). An empty set yields the null hash; a single leaf is its own
/// root. Odd levels duplicate their final node, as Bitcoin does.
Hash256 merkle_root(const std::vector<Hash256>& leaves) noexcept;

/// One sibling step in a Merkle inclusion proof.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_on_right = false;  ///< true if sibling is the right child

  bool operator==(const MerkleStep&) const = default;
};

/// Inclusion proof for one leaf.
struct MerkleProof {
  std::uint32_t index = 0;  ///< leaf position in the original vector
  std::vector<MerkleStep> steps;

  bool operator==(const MerkleProof&) const = default;
};

/// Builds an inclusion proof for leaf `index`. Throws UsageError if
/// `index` is out of range.
MerkleProof merkle_proof(const std::vector<Hash256>& leaves,
                         std::uint32_t index);

/// Verifies that `leaf` hashes up to `root` via `proof`.
bool merkle_verify(const Hash256& leaf, const MerkleProof& proof,
                   const Hash256& root) noexcept;

}  // namespace fist
