// hash.hpp — fixed-size digest value types and Bitcoin hash helpers.
//
// Hash256 carries txids / block hashes (double SHA-256); Hash160 carries
// address payloads (RIPEMD160∘SHA256 of a public key or script). Both
// are cheap value types usable as unordered-container keys.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "util/bytes.hpp"

namespace fist {

namespace detail {

/// Fixed-size digest value type. Ordered, hashable, hex-printable.
template <std::size_t N>
class FixedHash {
 public:
  static constexpr std::size_t kSize = N;

  /// Zero-filled (the "null hash").
  constexpr FixedHash() noexcept : data_{} {}

  /// Copies exactly N bytes from `v`; throws ParseError on mismatch.
  static FixedHash from_bytes(ByteView v);

  /// Parses 2N hex characters (natural byte order).
  static FixedHash from_hex(std::string_view hex);

  /// Parses 2N hex characters in Bitcoin's reversed display order.
  static FixedHash from_hex_reversed(std::string_view hex);

  const std::uint8_t* data() const noexcept { return data_.data(); }
  std::uint8_t* data() noexcept { return data_.data(); }
  static constexpr std::size_t size() noexcept { return N; }

  ByteView view() const noexcept { return ByteView(data_); }

  /// True iff every byte is zero.
  bool is_null() const noexcept {
    for (std::uint8_t b : data_)
      if (b != 0) return false;
    return true;
  }

  /// Hex in natural byte order.
  std::string hex() const;

  /// Hex in Bitcoin's reversed display order (what explorers show for
  /// txids and block hashes).
  std::string hex_reversed() const;

  /// First 8 bytes as a host integer — handy as a pre-hashed key.
  std::uint64_t low64() const noexcept {
    std::uint64_t v;
    std::memcpy(&v, data_.data(), sizeof(v));
    return v;
  }

  auto operator<=>(const FixedHash&) const noexcept = default;

  std::array<std::uint8_t, N> bytes() const noexcept { return data_; }

 private:
  std::array<std::uint8_t, N> data_;
};

}  // namespace detail

/// 32-byte digest: txids, block hashes, merkle roots.
using Hash256 = detail::FixedHash<32>;

/// 20-byte digest: address payloads (HASH160).
using Hash160 = detail::FixedHash<20>;

/// Double SHA-256 as a Hash256 value.
Hash256 hash256(ByteView data) noexcept;

/// RIPEMD160(SHA256(data)) — Bitcoin's HASH160.
Hash160 hash160(ByteView data) noexcept;

}  // namespace fist

namespace std {
template <size_t N>
struct hash<fist::detail::FixedHash<N>> {
  size_t operator()(const fist::detail::FixedHash<N>& h) const noexcept {
    // Digests are uniformly distributed; the low 64 bits suffice.
    return static_cast<size_t>(h.low64());
  }
};
}  // namespace std
