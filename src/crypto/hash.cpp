#include "crypto/hash.hpp"

#include <algorithm>

#include "crypto/ripemd160.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace fist {

namespace detail {

template <std::size_t N>
FixedHash<N> FixedHash<N>::from_bytes(ByteView v) {
  if (v.size() != N) throw ParseError("FixedHash: wrong length");
  FixedHash out;
  std::copy(v.begin(), v.end(), out.data_.begin());
  return out;
}

template <std::size_t N>
FixedHash<N> FixedHash<N>::from_hex(std::string_view hex) {
  return from_bytes(fist::from_hex(hex));
}

template <std::size_t N>
FixedHash<N> FixedHash<N>::from_hex_reversed(std::string_view hex) {
  Bytes raw = fist::from_hex(hex);
  std::reverse(raw.begin(), raw.end());
  return from_bytes(raw);
}

template <std::size_t N>
std::string FixedHash<N>::hex() const {
  return to_hex(view());
}

template <std::size_t N>
std::string FixedHash<N>::hex_reversed() const {
  return to_hex_reversed(view());
}

template class FixedHash<32>;
template class FixedHash<20>;

}  // namespace detail

Hash256 hash256(ByteView data) noexcept {
  Sha256::Digest d = sha256d(data);
  Hash256 out;
  std::copy(d.begin(), d.end(), out.data());
  return out;
}

Hash160 hash160(ByteView data) noexcept {
  Sha256::Digest first = sha256(data);
  Ripemd160::Digest second = ripemd160(ByteView(first));
  Hash160 out;
  std::copy(second.begin(), second.end(), out.data());
  return out;
}

}  // namespace fist
