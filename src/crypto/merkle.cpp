#include "crypto/merkle.hpp"

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace fist {

namespace {

Hash256 hash_pair(const Hash256& left, const Hash256& right) noexcept {
  Sha256 h;
  h.write(left.view());
  h.write(right.view());
  Sha256::Digest once = h.finish();
  Sha256::Digest twice = sha256(ByteView(once));
  Hash256 out;
  std::copy(twice.begin(), twice.end(), out.data());
  return out;
}

}  // namespace

Hash256 merkle_root(const std::vector<Hash256>& leaves) noexcept {
  if (leaves.empty()) return Hash256{};
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash256& left = level[i];
      const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(hash_pair(left, right));
    }
    level = std::move(next);
  }
  return level[0];
}

MerkleProof merkle_proof(const std::vector<Hash256>& leaves,
                         std::uint32_t index) {
  if (index >= leaves.size()) throw UsageError("merkle_proof: bad index");
  MerkleProof proof;
  proof.index = index;
  std::vector<Hash256> level = leaves;
  std::uint32_t pos = index;
  while (level.size() > 1) {
    std::uint32_t sib = pos ^ 1;
    if (sib >= level.size()) sib = pos;  // odd node pairs with itself
    proof.steps.push_back({level[sib], (pos & 1) == 0});
    std::vector<Hash256> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash256& left = level[i];
      const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(hash_pair(left, right));
    }
    level = std::move(next);
    pos >>= 1;
  }
  return proof;
}

bool merkle_verify(const Hash256& leaf, const MerkleProof& proof,
                   const Hash256& root) noexcept {
  Hash256 acc = leaf;
  for (const MerkleStep& step : proof.steps) {
    acc = step.sibling_on_right ? hash_pair(acc, step.sibling)
                                : hash_pair(step.sibling, acc);
  }
  return acc == root;
}

}  // namespace fist
