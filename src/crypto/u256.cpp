#include "crypto/u256.hpp"

#include "util/error.hpp"
#include "util/hex.hpp"

namespace fist {

U256 U256::from_hex(std::string_view hex) {
  if (hex.empty() || hex.size() > 64)
    throw ParseError("U256::from_hex: bad length");
  // Left-pad to 64 digits and reuse the byte loader.
  std::string padded(64 - hex.size(), '0');
  padded.append(hex);
  Bytes raw = fist::from_hex(padded);
  return from_be_bytes(raw);
}

U256 U256::from_be_bytes(ByteView b) {
  if (b.size() != 32) throw ParseError("U256::from_be_bytes: need 32 bytes");
  U256 out;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v = (v << 8) | b[static_cast<std::size_t>((3 - limb) * 8 + i)];
    out.w[static_cast<std::size_t>(limb)] = v;
  }
  return out;
}

std::array<std::uint8_t, 32> U256::to_be_bytes() const noexcept {
  std::array<std::uint8_t, 32> out{};
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = w[static_cast<std::size_t>(limb)];
    for (int i = 0; i < 8; ++i)
      out[static_cast<std::size_t>((3 - limb) * 8 + (7 - i))] =
          static_cast<std::uint8_t>(v >> (8 * i));
  }
  return out;
}

std::string U256::hex() const {
  auto bytes = to_be_bytes();
  return to_hex(ByteView(bytes));
}

unsigned U256::bit_length() const noexcept {
  for (int limb = 3; limb >= 0; --limb) {
    std::uint64_t v = w[static_cast<std::size_t>(limb)];
    if (v != 0) {
      unsigned hi = 63;
      while (!(v >> hi)) --hi;
      return static_cast<unsigned>(limb) * 64 + hi + 1;
    }
  }
  return 0;
}

int cmp(const U256& a, const U256& b) noexcept {
  for (int i = 3; i >= 0; --i) {
    std::size_t idx = static_cast<std::size_t>(i);
    if (a.w[idx] < b.w[idx]) return -1;
    if (a.w[idx] > b.w[idx]) return 1;
  }
  return 0;
}

U256 add(const U256& a, const U256& b, std::uint64_t& carry) noexcept {
  U256 out;
  unsigned __int128 acc = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    acc += a.w[i];
    acc += b.w[i];
    out.w[i] = static_cast<std::uint64_t>(acc);
    acc >>= 64;
  }
  carry = static_cast<std::uint64_t>(acc);
  return out;
}

U256 sub(const U256& a, const U256& b, std::uint64_t& borrow) noexcept {
  U256 out;
  unsigned __int128 br = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    unsigned __int128 lhs = a.w[i];
    unsigned __int128 rhs = static_cast<unsigned __int128>(b.w[i]) + br;
    if (lhs >= rhs) {
      out.w[i] = static_cast<std::uint64_t>(lhs - rhs);
      br = 0;
    } else {
      out.w[i] = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(1) << 64) + lhs - rhs);
      br = 1;
    }
  }
  borrow = static_cast<std::uint64_t>(br);
  return out;
}

U512 mul_wide(const U256& a, const U256& b) noexcept {
  U512 out;
  for (std::size_t i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.w[i]) * b.w[j] +
                              out.w[i + j] + carry;
      out.w[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    out.w[i + 4] = static_cast<std::uint64_t>(carry);
  }
  return out;
}

U256 shl(const U256& a, unsigned n) noexcept {
  if (n == 0) return a;
  U256 out;
  unsigned limb = n / 64, bits = n % 64;
  for (int i = 3; i >= 0; --i) {
    std::size_t idx = static_cast<std::size_t>(i);
    std::uint64_t v = 0;
    if (idx >= limb) {
      v = a.w[idx - limb] << bits;
      if (bits != 0 && idx >= limb + 1)
        v |= a.w[idx - limb - 1] >> (64 - bits);
    }
    out.w[idx] = v;
  }
  return out;
}

U256 shr(const U256& a, unsigned n) noexcept {
  if (n == 0) return a;
  U256 out;
  unsigned limb = n / 64, bits = n % 64;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    if (i + limb < 4) {
      v = a.w[i + limb] >> bits;
      if (bits != 0 && i + limb + 1 < 4) v |= a.w[i + limb + 1] << (64 - bits);
    }
    out.w[i] = v;
  }
  return out;
}

}  // namespace fist
