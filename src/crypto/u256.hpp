// u256.hpp — fixed-width 256-bit unsigned arithmetic.
//
// The secp256k1 field and scalar arithmetic is built on this type. U256
// is a plain value type of four 64-bit little-endian limbs; U512 carries
// full multiplication results before modular reduction.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace fist {

/// 512-bit product, little-endian limbs.
struct U512 {
  std::array<std::uint64_t, 8> w{};
};

/// 256-bit unsigned integer, little-endian limbs.
struct U256 {
  std::array<std::uint64_t, 4> w{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : w{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t w0, std::uint64_t w1, std::uint64_t w2,
                 std::uint64_t w3)
      : w{w0, w1, w2, w3} {}

  /// Parses up to 64 hex digits (big-endian digit order).
  static U256 from_hex(std::string_view hex);

  /// Loads 32 big-endian bytes.
  static U256 from_be_bytes(ByteView b);

  /// Emits 32 big-endian bytes.
  std::array<std::uint8_t, 32> to_be_bytes() const noexcept;

  /// 64 lowercase hex digits, big-endian.
  std::string hex() const;

  bool is_zero() const noexcept {
    return (w[0] | w[1] | w[2] | w[3]) == 0;
  }

  /// Bit `i` (0 = least significant).
  bool bit(unsigned i) const noexcept {
    return (w[i >> 6] >> (i & 63)) & 1;
  }

  /// Index of the highest set bit plus one (0 for zero).
  unsigned bit_length() const noexcept;

  bool operator==(const U256&) const = default;
};

/// Unsigned comparison: -1, 0 or +1.
int cmp(const U256& a, const U256& b) noexcept;

/// a + b, returning the carry-out (0/1) via `carry`.
U256 add(const U256& a, const U256& b, std::uint64_t& carry) noexcept;

/// a - b, returning the borrow-out (0/1) via `borrow`.
U256 sub(const U256& a, const U256& b, std::uint64_t& borrow) noexcept;

/// Full 256×256 → 512-bit product.
U512 mul_wide(const U256& a, const U256& b) noexcept;

/// Logical left shift by `n` bits (n < 256).
U256 shl(const U256& a, unsigned n) noexcept;

/// Logical right shift by `n` bits (n < 256).
U256 shr(const U256& a, unsigned n) noexcept;

}  // namespace fist
