// secp256k1.hpp — arithmetic on the secp256k1 curve, from scratch.
//
// Implements the prime field F_p, the scalar field F_n, and the group of
// points on y² = x³ + 7, with a windowed fixed-base multiplier for the
// generator. This is a *forensics-grade* implementation: correct and
// tested, but not constant-time — it must not be used to hold real
// funds. fistful uses it to derive authentic public keys and addresses
// and to make/check ECDSA signatures in tests and examples.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/u256.hpp"

namespace fist::secp {

/// Modular arithmetic for a Mersenne-like modulus m = 2^256 - c.
/// Both the secp256k1 field prime p and group order n have this shape,
/// which admits a fast wide-product reduction.
class ModArith {
 public:
  /// `modulus` must equal 2^256 - `c_low` - (`c_high` << 64) - ... ;
  /// the complement `c` is passed as a U256 (c = 2^256 - modulus).
  ModArith(const U256& modulus, const U256& c) noexcept
      : m_(modulus), c_(c) {}

  const U256& modulus() const noexcept { return m_; }

  /// (a + b) mod m. Operands must be < m.
  U256 add(const U256& a, const U256& b) const noexcept;

  /// (a - b) mod m. Operands must be < m.
  U256 sub(const U256& a, const U256& b) const noexcept;

  /// (a * b) mod m.
  U256 mul(const U256& a, const U256& b) const noexcept;

  /// a² mod m.
  U256 sqr(const U256& a) const noexcept { return mul(a, a); }

  /// a^e mod m (square-and-multiply).
  U256 pow(const U256& a, const U256& e) const noexcept;

  /// Multiplicative inverse via Fermat's little theorem (m prime).
  /// Requires a != 0.
  U256 inv(const U256& a) const noexcept;

  /// -a mod m.
  U256 neg(const U256& a) const noexcept;

  /// Reduces an arbitrary 256-bit value below m.
  U256 normalize(const U256& a) const noexcept;

  /// Reduces a 512-bit product below m.
  U256 reduce(const U512& x) const noexcept;

 private:
  U256 m_;
  U256 c_;
};

/// The field prime p = 2^256 - 2^32 - 977.
const U256& field_p() noexcept;

/// The group order n.
const U256& order_n() noexcept;

/// Field arithmetic mod p.
const ModArith& fp() noexcept;

/// Scalar arithmetic mod n.
const ModArith& fn() noexcept;

/// An affine point, or infinity.
struct Affine {
  U256 x;
  U256 y;
  bool infinity = true;

  bool operator==(const Affine& o) const noexcept {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }
};

/// A point in Jacobian projective coordinates (X/Z², Y/Z³).
/// Z == 0 encodes infinity.
struct Jacobian {
  U256 x;
  U256 y;
  U256 z;  // zero limbs => infinity

  bool is_infinity() const noexcept { return z.is_zero(); }
};

/// The generator point G.
const Affine& generator() noexcept;

/// Lifts an affine point to Jacobian coordinates.
Jacobian to_jacobian(const Affine& a) noexcept;

/// Normalizes to affine coordinates (one field inversion).
Affine to_affine(const Jacobian& p) noexcept;

/// Point doubling.
Jacobian dbl(const Jacobian& p) noexcept;

/// General point addition.
Jacobian add(const Jacobian& p, const Jacobian& q) noexcept;

/// Adds an affine point to a Jacobian point (mixed addition).
Jacobian add_affine(const Jacobian& p, const Affine& q) noexcept;

/// k·P for arbitrary P (double-and-add).
Jacobian mul(const U256& k, const Affine& point) noexcept;

/// k·G using a precomputed 4-bit window table — the fast path for key
/// generation and signing.
Jacobian mul_generator(const U256& k) noexcept;

/// True iff (x, y) satisfies the curve equation.
bool on_curve(const Affine& a) noexcept;

/// Recovers y from x for a compressed point; `odd_y` selects the root
/// parity. Returns nullopt if x is not on the curve.
std::optional<Affine> lift_x(const U256& x, bool odd_y) noexcept;

}  // namespace fist::secp
