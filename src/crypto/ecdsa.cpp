#include "crypto/ecdsa.hpp"

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace fist {

namespace {

// Interprets a 32-byte digest as a scalar mod n (as ECDSA's `z`).
U256 digest_to_scalar(const Hash256& digest) noexcept {
  U256 z = U256::from_be_bytes(digest.view());
  return secp::fn().normalize(z);
}

}  // namespace

PrivateKey::PrivateKey(const U256& scalar) : k_(scalar) {
  if (k_.is_zero() || cmp(k_, secp::order_n()) >= 0)
    throw UsageError("PrivateKey: scalar out of range");
}

PrivateKey PrivateKey::from_seed(ByteView seed) {
  Sha256::Digest d = sha256(seed);
  for (;;) {
    U256 k = U256::from_be_bytes(ByteView(d));
    if (!k.is_zero() && cmp(k, secp::order_n()) < 0) return PrivateKey(k);
    d = sha256(ByteView(d));  // extremely unlikely; iterate
  }
}

PublicKey PrivateKey::pubkey() const {
  return PublicKey(secp::to_affine(secp::mul_generator(k_)));
}

PublicKey::PublicKey(const secp::Affine& point) : point_(point) {
  if (!secp::on_curve(point_)) throw UsageError("PublicKey: not on curve");
}

PublicKey PublicKey::parse(ByteView sec1) {
  if (sec1.size() == 33 && (sec1[0] == 0x02 || sec1[0] == 0x03)) {
    U256 x = U256::from_be_bytes(sec1.subspan(1));
    auto pt = secp::lift_x(x, sec1[0] == 0x03);
    if (!pt) throw ParseError("PublicKey: x not on curve");
    return PublicKey(*pt);
  }
  if (sec1.size() == 65 && sec1[0] == 0x04) {
    secp::Affine a;
    a.x = U256::from_be_bytes(sec1.subspan(1, 32));
    a.y = U256::from_be_bytes(sec1.subspan(33, 32));
    a.infinity = false;
    if (!secp::on_curve(a)) throw ParseError("PublicKey: point not on curve");
    return PublicKey(a);
  }
  throw ParseError("PublicKey: bad SEC1 encoding");
}

Bytes PublicKey::serialize_compressed() const {
  Bytes out;
  out.reserve(33);
  out.push_back(point_.y.bit(0) ? 0x03 : 0x02);
  auto xb = point_.x.to_be_bytes();
  out.insert(out.end(), xb.begin(), xb.end());
  return out;
}

Bytes PublicKey::serialize_uncompressed() const {
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  auto xb = point_.x.to_be_bytes();
  auto yb = point_.y.to_be_bytes();
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

Hash160 PublicKey::hash160_compressed() const {
  Bytes ser = serialize_compressed();
  return hash160(ser);
}

Hash160 PublicKey::hash160_uncompressed() const {
  Bytes ser = serialize_uncompressed();
  return hash160(ser);
}

namespace {

// Writes a DER INTEGER for a U256 (minimal length, leading 0x00 if the
// high bit would make it read as negative).
void der_integer(Bytes& out, const U256& v) {
  auto be = v.to_be_bytes();
  std::size_t start = 0;
  while (start < 31 && be[start] == 0) ++start;
  bool pad = (be[start] & 0x80) != 0;
  std::size_t len = 32 - start + (pad ? 1 : 0);
  out.push_back(0x02);
  out.push_back(static_cast<std::uint8_t>(len));
  if (pad) out.push_back(0x00);
  out.insert(out.end(), be.begin() + static_cast<std::ptrdiff_t>(start),
             be.end());
}

}  // namespace

Bytes Signature::der() const {
  Bytes body;
  der_integer(body, r);
  der_integer(body, s);
  Bytes out;
  out.reserve(body.size() + 2);
  out.push_back(0x30);
  out.push_back(static_cast<std::uint8_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

namespace {

U256 parse_der_int(ByteView data, std::size_t& pos) {
  if (pos + 2 > data.size() || data[pos] != 0x02)
    throw ParseError("DER: expected INTEGER");
  std::size_t len = data[pos + 1];
  pos += 2;
  if (len == 0 || len > 33 || pos + len > data.size())
    throw ParseError("DER: bad INTEGER length");
  std::size_t start = pos;
  pos += len;
  // Strip one permissible leading zero pad.
  if (data[start] == 0x00) {
    ++start;
    --len;
    if (len > 32) throw ParseError("DER: INTEGER too wide");
  }
  if (len > 32) throw ParseError("DER: INTEGER too wide");
  std::array<std::uint8_t, 32> be{};
  std::copy(data.begin() + static_cast<std::ptrdiff_t>(start),
            data.begin() + static_cast<std::ptrdiff_t>(start + len),
            be.begin() + static_cast<std::ptrdiff_t>(32 - len));
  return U256::from_be_bytes(ByteView(be));
}

}  // namespace

Signature Signature::from_der(ByteView der) {
  if (der.size() < 6 || der[0] != 0x30)
    throw ParseError("DER: expected SEQUENCE");
  if (der[1] != der.size() - 2) throw ParseError("DER: bad SEQUENCE length");
  std::size_t pos = 2;
  Signature sig;
  sig.r = parse_der_int(der, pos);
  sig.s = parse_der_int(der, pos);
  if (pos != der.size()) throw ParseError("DER: trailing bytes");
  return sig;
}

Signature ecdsa_sign(const PrivateKey& key, const Hash256& digest) {
  const secp::ModArith& n = secp::fn();
  U256 z = digest_to_scalar(digest);
  auto priv_be = key.scalar().to_be_bytes();

  for (std::uint32_t counter = 0;; ++counter) {
    // Deterministic nonce: SHA256(priv ‖ digest ‖ counter), reduced mod n.
    Sha256 h;
    h.write(ByteView(priv_be));
    h.write(digest.view());
    std::uint8_t ctr[4] = {
        static_cast<std::uint8_t>(counter >> 24),
        static_cast<std::uint8_t>(counter >> 16),
        static_cast<std::uint8_t>(counter >> 8),
        static_cast<std::uint8_t>(counter),
    };
    h.write(ByteView(ctr, 4));
    Sha256::Digest kd = h.finish();
    U256 k = n.normalize(U256::from_be_bytes(ByteView(kd)));
    if (k.is_zero()) continue;

    secp::Affine R = secp::to_affine(secp::mul_generator(k));
    U256 r = n.normalize(R.x);
    if (r.is_zero()) continue;
    U256 s = n.mul(n.inv(k), n.add(z, n.mul(r, key.scalar())));
    if (s.is_zero()) continue;
    // Canonical low-s form, as Bitcoin requires post-BIP62.
    U256 half = shr(secp::order_n(), 1);
    if (cmp(s, half) > 0) s = n.neg(s);
    return Signature{r, s};
  }
}

bool ecdsa_verify(const PublicKey& key, const Hash256& digest,
                  const Signature& sig) noexcept {
  const secp::ModArith& n = secp::fn();
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (cmp(sig.r, secp::order_n()) >= 0 || cmp(sig.s, secp::order_n()) >= 0)
    return false;
  U256 z = digest_to_scalar(digest);
  U256 sinv = n.inv(sig.s);
  U256 u1 = n.mul(z, sinv);
  U256 u2 = n.mul(sig.r, sinv);
  secp::Jacobian R = secp::add(secp::mul_generator(u1),
                               secp::mul(u2, key.point()));
  if (R.is_infinity()) return false;
  secp::Affine Ra = secp::to_affine(R);
  return n.normalize(Ra.x) == sig.r;
}

}  // namespace fist
