// ecdsa.hpp — keypairs and ECDSA signatures over secp256k1.
//
// PrivateKey/PublicKey implement the exact pipeline Bitcoin wallets use:
// scalar → curve point → SEC1 serialization → HASH160 → address payload.
// Signatures use deterministic nonces (RFC-6979-inspired derivation via
// SHA-256) so all library behaviour replays exactly.
//
// NOT constant-time; see the module warning in secp256k1.hpp.
#pragma once

#include <optional>

#include "crypto/hash.hpp"
#include "crypto/secp256k1.hpp"
#include "util/bytes.hpp"

namespace fist {

class PublicKey;

/// A secp256k1 private key (a scalar in [1, n-1]).
class PrivateKey {
 public:
  /// Wraps a raw scalar; throws UsageError unless 0 < k < n.
  explicit PrivateKey(const U256& scalar);

  /// Derives a key deterministically from arbitrary seed bytes
  /// (SHA-256 chain until a valid scalar emerges). This is how the
  /// simulator mints per-address keys from its seeded RNG.
  static PrivateKey from_seed(ByteView seed);

  /// The underlying scalar.
  const U256& scalar() const noexcept { return k_; }

  /// Computes the corresponding public key (fixed-base multiply).
  PublicKey pubkey() const;

 private:
  U256 k_;
};

/// A secp256k1 public key (an affine curve point).
class PublicKey {
 public:
  /// Wraps an affine point; throws UsageError if not on the curve.
  explicit PublicKey(const secp::Affine& point);

  /// Parses a SEC1 serialization (33-byte compressed or 65-byte
  /// uncompressed). Throws ParseError on malformed input.
  static PublicKey parse(ByteView sec1);

  /// SEC1 compressed serialization: 0x02/0x03 ‖ X (33 bytes).
  Bytes serialize_compressed() const;

  /// SEC1 uncompressed serialization: 0x04 ‖ X ‖ Y (65 bytes).
  Bytes serialize_uncompressed() const;

  /// HASH160 of the compressed serialization — the P2PKH address
  /// payload modern wallets use.
  Hash160 hash160_compressed() const;

  /// HASH160 of the uncompressed serialization — the payload used by
  /// early (2009–2013 era) clients.
  Hash160 hash160_uncompressed() const;

  const secp::Affine& point() const noexcept { return point_; }

  bool operator==(const PublicKey& o) const noexcept {
    return point_ == o.point_;
  }

 private:
  secp::Affine point_;
};

/// An ECDSA signature (r, s), both in [1, n-1].
struct Signature {
  U256 r;
  U256 s;

  /// DER-encodes the signature (the format carried in scriptSigs).
  Bytes der() const;

  /// Parses a DER signature. Throws ParseError on malformed input.
  static Signature from_der(ByteView der);

  bool operator==(const Signature&) const = default;
};

/// Signs a 32-byte message digest. The nonce is derived
/// deterministically from (key, digest), so signing is reproducible.
Signature ecdsa_sign(const PrivateKey& key, const Hash256& digest);

/// Verifies a signature over a 32-byte message digest.
bool ecdsa_verify(const PublicKey& key, const Hash256& digest,
                  const Signature& sig) noexcept;

}  // namespace fist
