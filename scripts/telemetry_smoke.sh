#!/usr/bin/env bash
# telemetry_smoke.sh — end-to-end smoke test of the live scrape plane.
#
# Simulates a small economy, runs `fistctl cluster` with the telemetry
# server on an ephemeral port (plus a linger window so the scrape can
# land after a fast pipeline), scrapes /metrics and /healthz while the
# process is alive, and asserts the scrape is Prometheus text carrying
# the expected metric names. Also checks --events-out leaves a JSONL
# flight-recorder dump.
#
# Usage: scripts/telemetry_smoke.sh [path-to-fistctl]
set -u

FISTCTL=${1:-./build/fistctl}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"; [ -n "${CLUSTER_PID:-}" ] && kill "$CLUSTER_PID" 2>/dev/null' EXIT

fail() { echo "telemetry_smoke: FAIL: $*" >&2; exit 1; }

"$FISTCTL" simulate --days 20 --users 40 --seed 11 \
  --out "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  || fail "simulate exited $?"

# The run keeps the endpoint up 10 s after the pipeline so the scrape
# below can never lose the race against a fast build.
"$FISTCTL" cluster --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --out "$WORK/clusters.csv" --window 16 \
  --serve-metrics 0 --serve-linger-ms 10000 \
  --events-out "$WORK/events.jsonl" \
  2> "$WORK/stderr.log" &
CLUSTER_PID=$!

# The ephemeral port is announced on stderr before the pipeline runs.
PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^serving metrics on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
         "$WORK/stderr.log" | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$CLUSTER_PID" 2>/dev/null || fail "fistctl died before announcing a port: $(cat "$WORK/stderr.log")"
  sleep 0.1
done
[ -n "$PORT" ] || fail "no 'serving metrics' line on stderr"

scrape() {
  python3 - "$1" <<'EOF'
import sys, urllib.request
print(urllib.request.urlopen(sys.argv[1], timeout=5).read().decode())
EOF
}

HEALTH=$(scrape "http://127.0.0.1:$PORT/healthz") \
  || fail "/healthz scrape failed"
[ "$HEALTH" = "ok" ] || [ "$HEALTH" = "ok
" ] || fail "/healthz said: $HEALTH"

# The pipeline registers metrics as stages run; with the 10 s linger
# the final snapshot is guaranteed scrapeable, so retry until the late
# names land.
METRICS=
for _ in $(seq 1 100); do
  METRICS=$(scrape "http://127.0.0.1:$PORT/metrics") \
    || fail "/metrics scrape failed"
  echo "$METRICS" | grep -q "^# TYPE fist_h1_links " && break
  sleep 0.2
done
for name in fist_view_txs fist_view_blocks fist_h1_links \
            fist_telemetry_scrapes; do
  echo "$METRICS" | grep -q "^# TYPE $name " \
    || fail "/metrics missing '# TYPE $name': $(echo "$METRICS" | head -5)"
done
echo "$METRICS" | grep -q "^fist_view_tx_inputs_p50 " \
  || fail "/metrics missing histogram quantile lines"

PROGRESS=$(scrape "http://127.0.0.1:$PORT/progress") \
  || fail "/progress scrape failed"
echo "$PROGRESS" | grep -q '"stages":' || fail "/progress not JSON: $PROGRESS"
echo "$PROGRESS" | grep -q '"name":"view.windows"' \
  || fail "/progress missing the view.windows stage: $PROGRESS"

wait "$CLUSTER_PID"
status=$?
CLUSTER_PID=
[ "$status" -eq 0 ] || fail "fistctl cluster exited $status: $(cat "$WORK/stderr.log")"

[ -s "$WORK/events.jsonl" ] || fail "--events-out left no flight dump"
python3 - "$WORK/events.jsonl" <<'EOF' || fail "events.jsonl is not valid JSONL"
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty events file"
types = {json.loads(l)["type"] for l in lines}
assert any(t.startswith("flight.window_") for t in types), types
assert "flight.server_start" in types, types
EOF

echo "telemetry_smoke: OK (port $PORT, $(echo "$METRICS" | wc -l) metric lines)"
