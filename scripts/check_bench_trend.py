#!/usr/bin/env python3
"""Bench trend gate: fail CI when the pipeline slows down or bloats.

Compares one or more freshly produced ``BENCH_*.json`` reports
(bench/common.cpp ``write_bench_report``) against a committed baseline
and exits non-zero when the best candidate regresses by more than the
threshold. Two dimensions are judged:

* ``total_ms`` — pipeline wall-clock (minimum across candidates, since
  a single slow run cannot fail the gate while a genuine regression
  slows every run);
* ``peak_rss_bytes`` — process peak memory (also the minimum across
  candidates), when the baseline carries the field. Baselines predating
  the field gate on time alone, so refreshing them is never urgent.

    check_bench_trend.py --baseline bench/baselines/BENCH_table_clusters.json \
        [--max-regress-pct 20] [--max-rss-regress-pct 20] report.json [...]

The committed small-profile baseline was produced with
``FISTFUL_BENCH_SCALE=small``; the large-profile baseline
(``BENCH_table_clusters_large.json``) with the table_clusters_large
bench defaults. Refresh a baseline (copy a report from the CI
``bench-reports`` artifact or a local run) whenever an intentional
change moves the number, and say so in the commit message.
"""
import argparse
import json
import sys


def load_report(path):
    """Parses a report, dying with a useful message on partial or
    malformed JSON (a torn report must read as 'bench broke', not as a
    Python traceback)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"check_bench_trend: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_bench_trend: {path} is not valid JSON "
                 f"(truncated or partial report?): {e}")
    if not isinstance(doc, dict):
        sys.exit(f"check_bench_trend: {path} is not a JSON object")
    return doc


def numeric_value(doc, field):
    """The field as a float when present and numeric, else None.
    Reports carry non-numeric blocks alongside the gated scalars (the
    ``run`` metadata object, ``spans``, ``metrics``); a field holding
    such a block reads as absent rather than killing the gate."""
    value = doc.get(field)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def required_number(doc, path, field):
    value = numeric_value(doc, field)
    if value is None:
        sys.exit(f"check_bench_trend: {path} has no numeric {field} field")
    return value


def numeric_candidates(report_docs, field):
    """Per-report values for one dimension, dropping (with a note)
    reports where the field is absent or a non-numeric block."""
    out = {}
    for path, doc in report_docs.items():
        value = numeric_value(doc, field)
        if value is None:
            print(f"candidate {field}: skipped ({path}: absent or "
                  "non-numeric)")
        else:
            out[path] = value
    return out


def gate(name, base, candidates, max_regress_pct):
    """Prints the comparison for one dimension; returns True on pass."""
    best_path = min(candidates, key=candidates.get)
    best = candidates[best_path]
    if (base == 0.0) != (best == 0.0):
        # An empty histogram reports its quantiles as 0. A zero on one
        # side only reads as a ±100% swing: a zero candidate would
        # silently pass as a huge improvement, a zero baseline would
        # fail every healthy run. Neither is signal, so the dimension
        # is skipped loudly instead of judged.
        zero_side = "baseline" if base == 0.0 else f"candidate {best_path}"
        print(f"check_bench_trend: WARNING — {name} is 0 on the "
              f"{zero_side} but not the other side (empty histogram?); "
              "dimension skipped", file=sys.stderr)
        return True
    limit = base * (1.0 + max_regress_pct / 100.0)
    delta_pct = (best - base) / base * 100.0 if base > 0 else 0.0
    print(f"baseline {name} : {base:.3f}")
    for path, value in candidates.items():
        marker = "  <- best" if path == best_path else ""
        print(f"candidate {name}: {value:.3f}  ({path}){marker}")
    print(f"delta          : {delta_pct:+.1f}% (limit +{max_regress_pct:.0f}%)")
    if best > limit:
        print(f"check_bench_trend: FAIL — {name} regressed past the "
              "threshold", file=sys.stderr)
        return False
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json to compare against")
    ap.add_argument("--max-regress-pct", type=float, default=20.0,
                    help="fail when the best candidate's total_ms exceeds "
                         "the baseline by more than this (default 20)")
    ap.add_argument("--max-rss-regress-pct", type=float, default=20.0,
                    help="fail when the best candidate's peak_rss_bytes "
                         "exceeds the baseline by more than this "
                         "(default 20; skipped when the baseline lacks "
                         "the field)")
    ap.add_argument("--extra-field", action="append", default=[],
                    metavar="NAME",
                    help="additional top-level numeric report field to "
                         "gate with --max-regress-pct (repeatable; e.g. "
                         "delta_apply_p99_us; skipped when the baseline "
                         "lacks the field)")
    ap.add_argument("reports", nargs="+",
                    help="freshly produced BENCH_*.json candidates")
    args = ap.parse_args()

    base_doc = load_report(args.baseline)
    report_docs = {r: load_report(r) for r in args.reports}

    time_candidates = numeric_candidates(report_docs, "total_ms")
    if not time_candidates:
        sys.exit("check_bench_trend: no candidate has a numeric total_ms")
    ok = gate(
        "total_ms",
        required_number(base_doc, args.baseline, "total_ms"),
        time_candidates,
        args.max_regress_pct)

    base_rss = numeric_value(base_doc, "peak_rss_bytes")
    rss_candidates = numeric_candidates(report_docs, "peak_rss_bytes")
    if base_rss is not None and rss_candidates:
        ok &= gate("peak_rss_bytes", base_rss, rss_candidates,
                   args.max_rss_regress_pct)
    else:
        print("peak_rss_bytes : no numeric baseline/candidate values, "
              "gating on total_ms only")

    for field in args.extra_field:
        base_value = numeric_value(base_doc, field)
        extra_candidates = numeric_candidates(report_docs, field)
        if base_value is not None and extra_candidates:
            ok &= gate(field, base_value, extra_candidates,
                       args.max_regress_pct)
        else:
            print(f"{field} : no numeric baseline/candidate values, "
                  "not gated")

    if not ok:
        return 1
    print("check_bench_trend: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
