#!/usr/bin/env python3
"""Bench trend gate: fail CI when the pipeline slows down.

Compares the ``total_ms`` of one or more freshly produced
``BENCH_*.json`` reports (bench/common.cpp ``write_bench_report``)
against a committed baseline and exits non-zero when the best (minimum)
candidate regresses by more than the threshold.

    check_bench_trend.py --baseline bench/baselines/BENCH_table_clusters.json \
        [--max-regress-pct 20] report.json [report.json ...]

Several candidate reports are accepted precisely because wall-clock
benches are noisy: the CI job runs the bench a few times and passes
every report, and only the *minimum* is judged — a single slow run
(scheduler hiccup, cold cache) cannot fail the gate, while a genuine
regression slows every run. The committed baseline was produced with
``FISTFUL_BENCH_SCALE=small``; refresh it (copy a report from the CI
``bench-reports`` artifact or a local run) whenever an intentional
change moves the number, and say so in the commit message.
"""
import argparse
import json
import sys


def total_ms(path):
    with open(path) as f:
        doc = json.load(f)
    if "total_ms" not in doc:
        sys.exit(f"check_bench_trend: {path} has no total_ms field")
    return float(doc["total_ms"])


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json to compare against")
    ap.add_argument("--max-regress-pct", type=float, default=20.0,
                    help="fail when the best candidate exceeds the "
                         "baseline by more than this (default 20)")
    ap.add_argument("reports", nargs="+",
                    help="freshly produced BENCH_*.json candidates")
    args = ap.parse_args()

    base = total_ms(args.baseline)
    candidates = {r: total_ms(r) for r in args.reports}
    best_path = min(candidates, key=candidates.get)
    best = candidates[best_path]

    limit = base * (1.0 + args.max_regress_pct / 100.0)
    delta_pct = (best - base) / base * 100.0 if base > 0 else 0.0
    print(f"baseline total_ms : {base:.3f}  ({args.baseline})")
    for path, value in candidates.items():
        marker = "  <- best" if path == best_path else ""
        print(f"candidate total_ms: {value:.3f}  ({path}){marker}")
    print(f"delta             : {delta_pct:+.1f}% "
          f"(limit +{args.max_regress_pct:.0f}%)")

    if best > limit:
        print("check_bench_trend: FAIL — pipeline total regressed past the "
              "threshold", file=sys.stderr)
        return 1
    print("check_bench_trend: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
