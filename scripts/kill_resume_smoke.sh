#!/usr/bin/env bash
# kill_resume_smoke.sh — end-to-end crash-safety smoke test.
#
# Simulates a small economy, runs `fistctl cluster` with checkpointing
# and a deterministic SIGKILL after the view stage, then resumes and
# asserts the resumed output is byte-identical to an uninterrupted run.
#
# Usage: scripts/kill_resume_smoke.sh [path-to-fistctl]
set -u

FISTCTL=${1:-./build/fistctl}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "kill_resume_smoke: FAIL: $*" >&2; exit 1; }

"$FISTCTL" simulate --days 30 --users 40 --seed 7 \
  --out "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  || fail "simulate exited $?"

# Uninterrupted reference run (no checkpointing).
"$FISTCTL" cluster --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --out "$WORK/fresh.csv" \
  || fail "reference run exited $?"

# Run with checkpointing, killed right after the view stage persists.
"$FISTCTL" cluster --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --out "$WORK/resumed.csv" \
  --resume "$WORK/ckpt.manifest" --crash-after view
status=$?
[ "$status" -eq 137 ] || fail "expected SIGKILL exit 137, got $status"
[ -f "$WORK/ckpt.manifest" ] || fail "no manifest left behind by killed run"

# Resume: must complete, load the view checkpoint, and match the
# reference byte for byte.
"$FISTCTL" cluster --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --out "$WORK/resumed.csv" \
  --resume "$WORK/ckpt.manifest" \
  --metrics-out "$WORK/metrics.json" \
  || fail "resumed run exited $?"

cmp "$WORK/fresh.csv" "$WORK/resumed.csv" \
  || fail "resumed output differs from the uninterrupted run"

grep -q '"checkpoint.stages_loaded":[1-9]' "$WORK/metrics.json" \
  || fail "resumed run loaded no checkpoint stages"

echo "kill_resume_smoke: OK (resumed run byte-identical to fresh run)"
