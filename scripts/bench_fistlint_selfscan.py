#!/usr/bin/env python3
"""Times a fistlint self-scan and writes a BENCH_*.json report.

The analyzer is on the inner loop of every review (and of the
static-analysis CI job twice: cold, then warm for the coherence diff),
so its own latency is trend-gated like any pipeline stage:

* ``total_ms`` — best warm-cache scan (facts and findings reused; the
  steady state a developer rerunning after one edit sees);
* ``cold_scan_ms`` — the from-scratch scan that populates the cache,
  gated via ``check_bench_trend.py --extra-field cold_scan_ms``.

    bench_fistlint_selfscan.py --fistlint build/tools/fistlint/fistlint \
        [--root .] [--out bench-reports/BENCH_fistlint_selfscan.json] \
        [--warm-runs 3]

A scan that exits non-zero (findings or usage error) kills the bench:
a timing sampled from a failing run gates nothing.
"""
import argparse
import json
import os
import subprocess
import sys
import tempfile
import time


def run_scan(argv):
    t0 = time.monotonic()
    proc = subprocess.run(argv, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE)
    elapsed_ms = (time.monotonic() - t0) * 1000.0
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode(errors="replace"))
        sys.stderr.write(proc.stderr.decode(errors="replace"))
        sys.exit(f"bench_fistlint_selfscan: scan failed "
                 f"(exit {proc.returncode}); not timing a broken run")
    return elapsed_ms


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fistlint", required=True,
                    help="path to the fistlint binary")
    ap.add_argument("--root", default=".", help="repo root to scan")
    ap.add_argument("--out",
                    default="bench-reports/BENCH_fistlint_selfscan.json",
                    help="report path (parent directories are created)")
    ap.add_argument("--warm-runs", type=int, default=3,
                    help="warm-cache samples; the best is reported "
                         "(default 3)")
    args = ap.parse_args()

    # A private cache file isolates the bench from the developer's (or
    # the CI job's) real incremental state in build/fistlint.cache.
    with tempfile.TemporaryDirectory(prefix="fistlint-bench-") as tmp:
        base = [args.fistlint, "--root", args.root,
                "--cache", os.path.join(tmp, "selfscan.cache")]
        cold_ms = run_scan(base)
        warm_ms = min(run_scan(base) for _ in range(max(1, args.warm_runs)))

    report = {
        "bench": "fistlint_selfscan",
        "total_ms": warm_ms,
        "cold_scan_ms": cold_ms,
    }
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"fistlint self-scan: cold {cold_ms:.1f} ms, "
          f"best-of-{max(1, args.warm_runs)} warm {warm_ms:.1f} ms "
          f"-> {args.out}")


if __name__ == "__main__":
    main()
