#!/usr/bin/env python3
"""Unit tests for check_bench_trend.py, run under ctest.

Each case writes a baseline and candidate report into a temp dir and
runs the gate as a subprocess, the way CI does — the exit code and the
printed verdict are the contract.
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_trend.py")


class GateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_gate(self, baseline, reports, extra=()):
        cmd = [sys.executable, SCRIPT, "--baseline", baseline]
        for field in extra:
            cmd += ["--extra-field", field]
        cmd += reports
        return subprocess.run(cmd, capture_output=True, text=True)

    def test_within_threshold_passes(self):
        base = self.write("base.json", {"total_ms": 100.0})
        cand = self.write("cand.json", {"total_ms": 110.0})
        result = self.run_gate(base, [cand])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("check_bench_trend: OK", result.stdout)

    def test_regression_fails(self):
        base = self.write("base.json", {"total_ms": 100.0})
        cand = self.write("cand.json", {"total_ms": 130.0})
        result = self.run_gate(base, [cand])
        self.assertEqual(result.returncode, 1)
        self.assertIn("FAIL", result.stderr)

    def test_extra_field_regression_fails(self):
        base = self.write("base.json",
                          {"total_ms": 100.0, "delta_apply_p99_us": 50.0})
        cand = self.write("cand.json",
                          {"total_ms": 100.0, "delta_apply_p99_us": 90.0})
        result = self.run_gate(base, [cand], extra=["delta_apply_p99_us"])
        self.assertEqual(result.returncode, 1)
        self.assertIn("delta_apply_p99_us", result.stderr)

    def test_zero_candidate_warns_instead_of_passing_silently(self):
        # An empty histogram reports its quantiles as 0; that must not
        # read as a 100% improvement.
        base = self.write("base.json",
                          {"total_ms": 100.0, "delta_apply_p99_us": 50.0})
        cand = self.write("cand.json",
                          {"total_ms": 100.0, "delta_apply_p99_us": 0.0})
        result = self.run_gate(base, [cand], extra=["delta_apply_p99_us"])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("WARNING", result.stderr)
        self.assertIn("delta_apply_p99_us", result.stderr)
        self.assertIn("skipped", result.stderr)

    def test_zero_baseline_warns_instead_of_failing(self):
        # The mirror image: a zero baseline (recorded from an empty
        # histogram) must not fail every healthy run forever.
        base = self.write("base.json",
                          {"total_ms": 100.0, "delta_apply_p99_us": 0.0})
        cand = self.write("cand.json",
                          {"total_ms": 100.0, "delta_apply_p99_us": 40.0})
        result = self.run_gate(base, [cand], extra=["delta_apply_p99_us"])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("WARNING", result.stderr)

    def test_zero_on_both_sides_is_not_a_warning(self):
        base = self.write("base.json",
                          {"total_ms": 100.0, "delta_apply_p99_us": 0.0})
        cand = self.write("cand.json",
                          {"total_ms": 100.0, "delta_apply_p99_us": 0.0})
        result = self.run_gate(base, [cand], extra=["delta_apply_p99_us"])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertNotIn("WARNING", result.stderr)

    def test_missing_extra_field_is_noted_not_fatal(self):
        base = self.write("base.json", {"total_ms": 100.0})
        cand = self.write("cand.json", {"total_ms": 100.0})
        result = self.run_gate(base, [cand], extra=["delta_apply_p99_us"])
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("not gated", result.stdout)


if __name__ == "__main__":
    unittest.main()
