#!/usr/bin/env bash
# incremental_smoke.sh — end-to-end smoke test for the live index.
#
# Simulates a small economy, then drives `fistctl live` through the
# paths the differential suite covers in-process:
#   1. live build over the whole chain == batch `fistctl cluster`;
#   2. SIGKILL mid-stream (--crash-after-epoch), resume from the
#      durable delta log + snapshot, still byte-identical;
#   3. `cluster --resume` pointed at a missing directory exits 2 with
#      an actionable hint;
#   4. a corrupted delta-log record under lenient recovery exits 4 and
#      names the quarantined record.
#
# Usage: scripts/incremental_smoke.sh [path-to-fistctl]
set -u

FISTCTL=${1:-./build/fistctl}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() { echo "incremental_smoke: FAIL: $*" >&2; exit 1; }

"$FISTCTL" simulate --days 20 --users 30 --seed 11 \
  --out "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  || fail "simulate exited $?"

# Batch reference. --naive on both sides: the refined live path feeds
# the dice exemption raw tagged addresses rather than whole H1
# clusters, so exact parity is the naive configuration's contract.
"$FISTCTL" cluster --naive --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --out "$WORK/batch.csv" \
  || fail "batch cluster exited $?"

# 1. Whole-chain live build matches batch byte for byte.
"$FISTCTL" live --naive --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --delta-log "$WORK/live1" --out "$WORK/live1.csv" \
  || fail "live run exited $?"
cmp "$WORK/batch.csv" "$WORK/live1.csv" \
  || fail "live output differs from batch"

# 2. Kill mid-stream, then resume from the durable state.
"$FISTCTL" live --naive --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --delta-log "$WORK/live2" --snapshot-every 32 --crash-after-epoch 100 \
  --out "$WORK/live2.csv" 2> "$WORK/crash.log"
status=$?
[ "$status" -eq 137 ] || fail "expected SIGKILL exit 137, got $status"
[ -f "$WORK/live2/delta.log" ] || fail "no delta log left behind by killed run"
"$FISTCTL" live --naive --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --delta-log "$WORK/live2" --out "$WORK/live2.csv" 2> "$WORK/resume.log" \
  || fail "resumed live run exited $?"
grep -q 'snapshot 96' "$WORK/resume.log" \
  || fail "resume did not restore the epoch-96 snapshot: $(cat "$WORK/resume.log")"
cmp "$WORK/batch.csv" "$WORK/live2.csv" \
  || fail "resumed live output differs from batch"

# 3. --resume into a missing directory: actionable usage error, exit 2.
"$FISTCTL" cluster --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --out "$WORK/x.csv" --resume "$WORK/no-such-dir/ckpt.manifest" \
  2> "$WORK/hint.log"
status=$?
[ "$status" -eq 2 ] || fail "expected exit 2 for missing --resume dir, got $status"
grep -q 'does not exist' "$WORK/hint.log" \
  || fail "missing-dir hint absent: $(cat "$WORK/hint.log")"

# 4. Corrupt one payload byte: lenient recovery quarantines the record
# and the run exits 4 (delta-log corruption), naming the record. Byte
# 20 sits inside record 0's payload (records open with a 16-byte
# frame header), so the checksum — not the framing — fails, which is
# the quarantine-with-stable-indices path.
cp -r "$WORK/live1" "$WORK/live3"
rm -f "$WORK/live3/live.snapshot" "$WORK/live3/live.snapshot.sha256d" \
  "$WORK/live3/live.manifest"
printf '\xff' | dd of="$WORK/live3/delta.log" bs=1 seek=20 \
  count=1 conv=notrunc status=none || fail "corrupting delta.log failed"
"$FISTCTL" live --naive --recovery lenient \
  --chain "$WORK/chain.dat" --tags "$WORK/tags.csv" \
  --delta-log "$WORK/live3" --out "$WORK/live3.csv" 2> "$WORK/corrupt.log"
status=$?
[ "$status" -eq 4 ] || fail "expected exit 4 for corrupted delta log, got $status"
grep -q 'quarantined .* whole delta record' "$WORK/corrupt.log" \
  || fail "quarantine summary absent: $(cat "$WORK/corrupt.log")"

echo "incremental_smoke: OK (live==batch, crash-resume, exit codes 2 and 4)"
